package shift

import (
	"fmt"
	"strings"

	"shift/internal/area"
	"shift/internal/stats"
)

// PowerRow is one workload's SHIFT power overhead estimate.
type PowerRow struct {
	// Workload names the row.
	Workload string
	// ExtraMW is the CMP-wide extra power from history and index
	// activity in the LLC and NoC, in milliwatts.
	ExtraMW float64
	// PerLeanIOCorePct expresses the overhead relative to a Lean-IO
	// core's power budget (the paper's "<2% per Lean-IO core").
	PerLeanIOCorePct float64
}

// PowerStudy reproduces the paper's Section 5.7: SHIFT's power overhead
// from (1) history buffer reads/writes and (2) index reads/writes in the
// LLC, estimated with the CACTI-calibrated energy model. The paper
// reports less than 150mW total on the 16-core CMP.
type PowerStudy struct {
	// Rows holds one entry per workload.
	Rows []PowerRow
	// MaxMW is the worst-case workload's overhead.
	MaxMW float64
}

// leanIOCoreMW is the power budget of a Lean-IO (Cortex-A8-class) core at
// 2GHz, used only to express the overhead as a percentage; the A8 is
// commonly cited at <0.5W/GHz in 40nm-class processes.
const leanIOCoreMW = 500.0

// RunPowerStudy regenerates the Section 5.7 analysis from virtualized
// SHIFT runs.
func RunPowerStudy(o Options) (*PowerStudy, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, len(o.Workloads))
	for i, w := range o.Workloads {
		cells[i] = cell(o.config(w, DesignSHIFT))
	}
	results, err := o.engine().RunAll(cells)
	if err != nil {
		return nil, err
	}
	model := area.DefaultEnergyModel()
	study := &PowerStudy{}
	for i, w := range o.Workloads {
		res := results[i]
		mw := model.PowerMW(area.Activity{
			HistReads:       res.Traffic.HistRead,
			HistReadHops:    res.Traffic.HistReadHops,
			HistWrites:      res.Traffic.HistWrite,
			HistWriteHops:   res.Traffic.HistWriteHops,
			IndexUpdates:    res.Traffic.IndexUpdate,
			IndexUpdateHops: res.Traffic.IndexUpdateHops,
			Cycles:          res.MeanCoreCycles,
		})
		row := PowerRow{
			Workload:         WorkloadDisplayName(w),
			ExtraMW:          mw,
			PerLeanIOCorePct: mw / float64(o.Cores) / leanIOCoreMW * 100,
		}
		study.Rows = append(study.Rows, row)
		if mw > study.MaxMW {
			study.MaxMW = mw
		}
	}
	return study, nil
}

// UnderPaperBudget reports whether every workload stays under the paper's
// 150mW budget.
func (p *PowerStudy) UnderPaperBudget() bool { return p.MaxMW < 150 }

// String renders the power table.
func (p *PowerStudy) String() string {
	t := stats.NewTable("Workload", "Extra power (mW, 16-core CMP)", "Per Lean-IO core (%)")
	for _, r := range p.Rows {
		t.AddRow(r.Workload, fmt.Sprintf("%.1f", r.ExtraMW), fmt.Sprintf("%.2f", r.PerLeanIOCorePct))
	}
	var b strings.Builder
	b.WriteString("Section 5.7: SHIFT power overhead (history + index activity in LLC and NoC)\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "Worst case %.1f mW; under the paper's 150mW budget: %v\n", p.MaxMW, p.UnderPaperBudget())
	return b.String()
}
