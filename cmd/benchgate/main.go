// Command benchgate turns `go test -bench` output into a committed,
// machine-readable benchmark record (BENCH_5.json) and gates
// throughput, scheduling, and sampled-mode regressions against it.
//
// Modes:
//
//	# Record: parse bench output (possibly -count>1) and write the JSON
//	# record, embedding the pre-optimization baseline for the speedup.
//	go test -run '^$' -bench 'SimulatorThroughput|Figure7Sweep|SampledFigure7' -benchtime 3x -count 5 . > bench/current.txt
//	go run ./cmd/benchgate -new bench/current.txt -baseline-records 812645 -out BENCH_5.json
//
//	# Gate against another run on the SAME host (what CI does: the PR's
//	# base commit and head are benchmarked back to back on one runner,
//	# so hardware differences cancel out):
//	go run ./cmd/benchgate -new head.txt -old base.txt
//
//	# Gate against the committed record (same-host workflows only —
//	# absolute records/s are not portable across machines):
//	go run ./cmd/benchgate -new bench_new.txt -gate BENCH_5.json
//
//	# Gate the engine's scheduling wins, in-process (host-portable
//	# ratios, not absolute times). The parallel gate needs real
//	# hardware parallelism and is loudly skipped below -require-cpus:
//	go run ./cmd/benchgate -new bench_new.txt -min-batched-speedup 1.10 -min-parallel-speedup 1.3
//
//	# Gate the sampled execution mode: the sampled Figure-7 sweep must
//	# beat exact by the floor, at bounded worst-case Throughput error
//	# (in-process ratios, host-portable):
//	go run ./cmd/benchgate -new bench_new.txt -min-sampled-speedup 5.0 -max-sampled-rel-err 0.02
//
// Gates compare best-of-count samples, which suppresses scheduler
// noise, and fail on a regression larger than -tolerance (default 10%).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Record is the committed benchmark state.
type Record struct {
	// Benchmark is the gating benchmark name.
	Benchmark string `json:"benchmark"`
	// CPU is the host the record was produced on (from the bench header).
	CPU string `json:"cpu,omitempty"`
	// RecordsPerSec is the best observed simulator throughput.
	RecordsPerSec float64 `json:"records_per_s"`
	// RecordsPerSecSamples are all observed samples (one per -count).
	RecordsPerSecSamples []float64 `json:"records_per_s_samples,omitempty"`
	// AllocsPerRecord is the amortized allocation rate of a full run
	// (construction + warmup included; steady state is exactly zero and
	// gated by internal/sim's allocation tests).
	AllocsPerRecord float64 `json:"allocs_per_record"`
	// BaselineRecordsPerSec is the pre-optimization throughput measured
	// with the same benchmark on the same host.
	BaselineRecordsPerSec float64 `json:"baseline_records_per_s,omitempty"`
	// SpeedupVsBaseline is RecordsPerSec / BaselineRecordsPerSec.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
	// Figure7SweepSerialNs / UnbatchedNs / Parallel4Ns record the
	// engine-scheduling benchmark (ns/op, best of count): the default
	// batched serial schedule, the per-cell (pre-batching) serial
	// schedule, and the 4-worker batched pool.
	Figure7SweepSerialNs    float64 `json:"figure7_sweep_serial_ns,omitempty"`
	Figure7SweepUnbatchedNs float64 `json:"figure7_sweep_unbatched_ns,omitempty"`
	Figure7SweepParallel4Ns float64 `json:"figure7_sweep_parallel4_ns,omitempty"`
	// Figure7BatchedSpeedup is unbatched/serial wall-clock: the
	// single-threaded win from simulating every design of a workload in
	// one pass off a shared trace stream.
	Figure7BatchedSpeedup float64 `json:"figure7_batched_speedup,omitempty"`
	// Figure7ParallelSpeedup is serial/parallel4 wall-clock. It is only
	// meaningful on hosts with >= 4 CPUs — benchgate refuses to record
	// it below -require-cpus, so a committed record can never carry a
	// starved-host artifact; the recording host's CPU count is in CPUs.
	Figure7ParallelSpeedup float64 `json:"figure7_parallel_speedup,omitempty"`
	// SampledFigure7ExactNs / SampledNs record the sampled-execution
	// benchmark (ns/op, best of count): the exact Figure-7 sweep at the
	// long window and the same sweep under interval sampling.
	SampledFigure7ExactNs float64 `json:"sampled_figure7_exact_ns,omitempty"`
	SampledFigure7Ns      float64 `json:"sampled_figure7_ns,omitempty"`
	// SampledSpeedup is exact/sampled wall-clock on the sweep.
	SampledSpeedup float64 `json:"sampled_speedup,omitempty"`
	// SampledMaxRelErr is the worst relative Throughput (IPC-class)
	// error of the sampled sweep versus its exact reference, worst
	// sample across -count runs (identical across runs in practice:
	// the simulator is deterministic).
	SampledMaxRelErr float64 `json:"sampled_max_rel_err,omitempty"`
	// SampledMaxMPKIRelErr is the analogous worst MPKI error
	// (informational; the interval-level miss process is bursty, which
	// is what the per-run confidence intervals quantify).
	SampledMaxMPKIRelErr float64 `json:"sampled_max_mpki_rel_err,omitempty"`
	// CPUs is runtime.NumCPU() on the recording host.
	CPUs int `json:"cpus,omitempty"`
}

// parsed is everything benchgate extracts from one bench output file.
type parsed struct {
	cpu              string
	recordsPerSec    []float64
	allocsPerRec     []float64
	sweepSerialNs    []float64
	sweepUnbatchedNs []float64
	sweepPar4Ns      []float64
	sampledExactNs   []float64
	sampledNs        []float64
	sampledRelErr    []float64
	sampledMPKIErr   []float64
	throughputName   string
}

// parseBench scans `go test -bench` output. Metric lines look like:
//
//	BenchmarkSimulatorThroughput  3  1419e8 ns/op  0.0097 allocs/record  2220787 records/s  ...
//	BenchmarkFigure7Sweep/serial-8  1  83e9 ns/op  ...
func parseBench(path string) (*parsed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p := &parsed{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "cpu:") {
			p.cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		metric := func(unit string) (float64, bool) {
			for i := 2; i+1 < len(fields); i += 2 {
				if fields[i+1] == unit {
					v, err := strconv.ParseFloat(fields[i], 64)
					if err == nil {
						return v, true
					}
				}
			}
			return 0, false
		}
		switch {
		case strings.HasPrefix(name, "BenchmarkSimulatorThroughput"):
			p.throughputName = name
			if v, ok := metric("records/s"); ok {
				p.recordsPerSec = append(p.recordsPerSec, v)
			}
			if v, ok := metric("allocs/record"); ok {
				p.allocsPerRec = append(p.allocsPerRec, v)
			}
		case name == "BenchmarkFigure7Sweep/serial":
			if v, ok := metric("ns/op"); ok {
				p.sweepSerialNs = append(p.sweepSerialNs, v)
			}
		case name == "BenchmarkFigure7Sweep/unbatched":
			if v, ok := metric("ns/op"); ok {
				p.sweepUnbatchedNs = append(p.sweepUnbatchedNs, v)
			}
		case name == "BenchmarkFigure7Sweep/parallel4":
			if v, ok := metric("ns/op"); ok {
				p.sweepPar4Ns = append(p.sweepPar4Ns, v)
			}
		case name == "BenchmarkSampledFigure7/exact":
			if v, ok := metric("ns/op"); ok {
				p.sampledExactNs = append(p.sampledExactNs, v)
			}
		case name == "BenchmarkSampledFigure7/sampled":
			if v, ok := metric("ns/op"); ok {
				p.sampledNs = append(p.sampledNs, v)
			}
			if v, ok := metric("max-rel-err"); ok {
				p.sampledRelErr = append(p.sampledRelErr, v)
			}
			if v, ok := metric("max-mpki-rel-err"); ok {
				p.sampledMPKIErr = append(p.sampledMPKIErr, v)
			}
		}
	}
	return p, sc.Err()
}

func best(samples []float64, higherIsBetter bool) float64 {
	if len(samples) == 0 {
		return 0
	}
	b := samples[0]
	for _, v := range samples[1:] {
		if (higherIsBetter && v > b) || (!higherIsBetter && v < b) {
			b = v
		}
	}
	return b
}

func main() {
	var (
		newPath         = flag.String("new", "", "bench output to record or gate (required)")
		outPath         = flag.String("out", "", "write a Record JSON here (record mode)")
		baselineRecords = flag.Float64("baseline-records", 0, "pre-optimization records/s to embed (record mode)")
		gatePath        = flag.String("gate", "", "committed Record JSON to gate against (same-host gate mode)")
		oldPath         = flag.String("old", "", "bench output of the base/old build to gate against (same-runner gate mode)")
		tolerance       = flag.Float64("tolerance", 0.10, "allowed fractional throughput regression before failing")
		minBatched      = flag.Float64("min-batched-speedup", 0, "fail if the in-process batched sweep speedup (unbatched/serial) is below this (0 = no gate)")
		minParallel     = flag.Float64("min-parallel-speedup", 0, "fail if the in-process parallel sweep speedup (serial/parallel4) is below this (0 = no gate)")
		minSampled      = flag.Float64("min-sampled-speedup", 0, "fail if the sampled Figure-7 sweep speedup (exact/sampled) is below this (0 = no gate)")
		maxSampledErr   = flag.Float64("max-sampled-rel-err", 0, "fail if the sampled sweep's worst relative Throughput error exceeds this (0 = no gate)")
		requireCPUs     = flag.Int("require-cpus", 4, "minimum runtime.NumCPU() for the parallel-speedup gate; below it the gate is loudly skipped (a 4-worker pool cannot beat serial without hardware parallelism)")
		printBaseline   = flag.String("print-baseline", "", "print baseline_records_per_s from this Record JSON and exit")
	)
	flag.Parse()
	if *printBaseline != "" {
		data, err := os.ReadFile(*printBaseline)
		if err != nil {
			fail(err)
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			fail(err)
		}
		fmt.Printf("%.0f\n", rec.BaselineRecordsPerSec)
		return
	}
	if *newPath == "" || (*outPath == "" && *gatePath == "" && *oldPath == "" && *minBatched == 0 && *minParallel == 0 && *minSampled == 0 && *maxSampledErr == 0) {
		fmt.Fprintln(os.Stderr, "benchgate: need -new plus -out (record), -old (same-runner gate), -gate (same-host gate), or a -min-*-speedup floor")
		os.Exit(2)
	}
	p, err := parseBench(*newPath)
	if err != nil {
		fail(err)
	}
	if len(p.recordsPerSec) == 0 {
		fail(fmt.Errorf("no BenchmarkSimulatorThroughput records/s samples in %s", *newPath))
	}
	rec := Record{
		Benchmark:            "BenchmarkSimulatorThroughput",
		CPU:                  p.cpu,
		RecordsPerSec:        best(p.recordsPerSec, true),
		RecordsPerSecSamples: p.recordsPerSec,
		AllocsPerRecord:      best(p.allocsPerRec, false),
	}
	rec.CPUs = runtime.NumCPU()
	if len(p.sweepSerialNs) > 0 {
		rec.Figure7SweepSerialNs = best(p.sweepSerialNs, false)
	}
	if len(p.sweepUnbatchedNs) > 0 {
		rec.Figure7SweepUnbatchedNs = best(p.sweepUnbatchedNs, false)
		if rec.Figure7SweepSerialNs > 0 {
			rec.Figure7BatchedSpeedup = rec.Figure7SweepUnbatchedNs / rec.Figure7SweepSerialNs
		}
	}
	// Parallel-speedup figures are only recorded on hosts with real
	// hardware parallelism: a worker pool cannot beat serial on a
	// starved host, and committing such a measurement (as an early
	// record of this repository once did, from a 1-CPU container)
	// poisons every later same-host comparison. The gate below skips
	// loudly in the same situation; recording must refuse too.
	if len(p.sweepPar4Ns) > 0 {
		if rec.CPUs >= *requireCPUs {
			rec.Figure7SweepParallel4Ns = best(p.sweepPar4Ns, false)
			if rec.Figure7SweepSerialNs > 0 {
				rec.Figure7ParallelSpeedup = rec.Figure7SweepSerialNs / rec.Figure7SweepParallel4Ns
			}
		} else {
			fmt.Printf("benchgate: NOT recording parallel sweep figures: host has %d CPU(s), need >= %d (a pool cannot beat serial without hardware parallelism)\n",
				rec.CPUs, *requireCPUs)
		}
	}
	if len(p.sampledExactNs) > 0 && len(p.sampledNs) > 0 {
		rec.SampledFigure7ExactNs = best(p.sampledExactNs, false)
		rec.SampledFigure7Ns = best(p.sampledNs, false)
		rec.SampledSpeedup = rec.SampledFigure7ExactNs / rec.SampledFigure7Ns
	}
	if len(p.sampledRelErr) > 0 {
		// Worst observed error across samples (deterministic in
		// practice — the simulator is a pure function of its inputs).
		rec.SampledMaxRelErr = best(p.sampledRelErr, true)
	}
	if len(p.sampledMPKIErr) > 0 {
		rec.SampledMaxMPKIRelErr = best(p.sampledMPKIErr, true)
	}

	if *minBatched > 0 {
		if rec.Figure7BatchedSpeedup == 0 {
			fail(fmt.Errorf("no Figure7Sweep serial+unbatched samples in %s for the batched-speedup gate", *newPath))
		}
		fmt.Printf("benchgate: batched sweep speedup %.2fx (unbatched %.0fms / batched %.0fms), floor %.2fx\n",
			rec.Figure7BatchedSpeedup, rec.Figure7SweepUnbatchedNs/1e6, rec.Figure7SweepSerialNs/1e6, *minBatched)
		if rec.Figure7BatchedSpeedup < *minBatched {
			fail(fmt.Errorf("batched sweep speedup %.2fx < %.2fx floor", rec.Figure7BatchedSpeedup, *minBatched))
		}
	}
	if *minParallel > 0 {
		switch {
		case rec.CPUs < *requireCPUs:
			fmt.Printf("benchgate: SKIPPING parallel-speedup gate: host has %d CPU(s), need >= %d — a 4-worker pool cannot beat serial without hardware parallelism (measured %.2fx)\n",
				rec.CPUs, *requireCPUs, rec.Figure7ParallelSpeedup)
		case rec.Figure7ParallelSpeedup == 0:
			fail(fmt.Errorf("no Figure7Sweep serial+parallel4 samples in %s for the parallel-speedup gate", *newPath))
		default:
			fmt.Printf("benchgate: parallel sweep speedup %.2fx (serial %.0fms / parallel4 %.0fms) on %d CPUs, floor %.2fx\n",
				rec.Figure7ParallelSpeedup, rec.Figure7SweepSerialNs/1e6, rec.Figure7SweepParallel4Ns/1e6, rec.CPUs, *minParallel)
			if rec.Figure7ParallelSpeedup < *minParallel {
				fail(fmt.Errorf("parallel sweep speedup %.2fx < %.2fx floor", rec.Figure7ParallelSpeedup, *minParallel))
			}
		}
	}

	if *minSampled > 0 {
		if rec.SampledSpeedup == 0 {
			fail(fmt.Errorf("no SampledFigure7 exact+sampled samples in %s for the sampled-speedup gate", *newPath))
		}
		fmt.Printf("benchgate: sampled sweep speedup %.2fx (exact %.0fms / sampled %.0fms), floor %.2fx\n",
			rec.SampledSpeedup, rec.SampledFigure7ExactNs/1e6, rec.SampledFigure7Ns/1e6, *minSampled)
		if rec.SampledSpeedup < *minSampled {
			fail(fmt.Errorf("sampled sweep speedup %.2fx < %.2fx floor", rec.SampledSpeedup, *minSampled))
		}
	}
	if *maxSampledErr > 0 {
		if len(p.sampledRelErr) == 0 {
			fail(fmt.Errorf("no SampledFigure7 max-rel-err samples in %s for the sampled-accuracy gate", *newPath))
		}
		fmt.Printf("benchgate: sampled sweep max Throughput rel err %.4f (MPKI %.4f, informational), ceiling %.4f\n",
			rec.SampledMaxRelErr, rec.SampledMaxMPKIRelErr, *maxSampledErr)
		if rec.SampledMaxRelErr > *maxSampledErr {
			fail(fmt.Errorf("sampled sweep rel err %.4f > %.4f ceiling", rec.SampledMaxRelErr, *maxSampledErr))
		}
	}

	if *oldPath != "" {
		old, err := parseBench(*oldPath)
		if err != nil {
			fail(err)
		}
		if len(old.recordsPerSec) == 0 {
			fail(fmt.Errorf("no BenchmarkSimulatorThroughput records/s samples in %s", *oldPath))
		}
		oldBest := best(old.recordsPerSec, true)
		ratio := rec.RecordsPerSec / oldBest
		fmt.Printf("benchgate: %s: %.0f records/s (head) vs %.0f (base, same runner) — ratio %.3f, tolerance %.0f%%\n",
			rec.Benchmark, rec.RecordsPerSec, oldBest, ratio, *tolerance*100)
		if ratio < 1-*tolerance {
			fail(fmt.Errorf("throughput regression: ratio %.3f < %.3f", ratio, 1-*tolerance))
		}
	}

	if *gatePath != "" {
		data, err := os.ReadFile(*gatePath)
		if err != nil {
			fail(err)
		}
		var committed Record
		if err := json.Unmarshal(data, &committed); err != nil {
			fail(err)
		}
		ratio := rec.RecordsPerSec / committed.RecordsPerSec
		fmt.Printf("benchgate: %s: %.0f records/s vs committed %.0f (ratio %.3f, tolerance %.0f%%)\n",
			rec.Benchmark, rec.RecordsPerSec, committed.RecordsPerSec, ratio, *tolerance*100)
		if ratio < 1-*tolerance {
			fail(fmt.Errorf("throughput regression: ratio %.3f < %.3f", ratio, 1-*tolerance))
		}
	}

	if *outPath != "" {
		if *baselineRecords > 0 {
			rec.BaselineRecordsPerSec = *baselineRecords
			rec.SpeedupVsBaseline = rec.RecordsPerSec / *baselineRecords
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("benchgate: wrote %s (%.0f records/s", *outPath, rec.RecordsPerSec)
		if rec.SpeedupVsBaseline > 0 {
			fmt.Printf(", %.2fx vs baseline", rec.SpeedupVsBaseline)
		}
		fmt.Println(")")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
