package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestTracegenRoundTrip builds the binary and exercises generate → store
// → inspect end to end.
func TestTracegenRoundTrip(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "tracegen")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	trc := filepath.Join(dir, "ws.trc")
	out, err := exec.Command(bin, "-workload", "Web Search", "-records", "20000", "-out", trc).CombinedOutput()
	if err != nil {
		t.Fatalf("generate: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "wrote 20000 records") {
		t.Errorf("unexpected generate output: %s", out)
	}
	if fi, err := os.Stat(trc); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}

	out, err = exec.Command(bin, "-in", trc, "-stats").CombinedOutput()
	if err != nil {
		t.Fatalf("stats: %v\n%s", err, out)
	}
	for _, want := range []string{"records:", "20000", "footprint:", "sequential:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}

	out, err = exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("list: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "OLTP Oracle") {
		t.Errorf("list missing workloads:\n%s", out)
	}
}
