// Command tracegen generates, stores, and inspects synthetic server-
// workload instruction fetch traces.
//
// Usage:
//
//	tracegen -workload "OLTP Oracle" -records 1000000 -out oracle.trc
//	tracegen -in oracle.trc -stats
//	tracegen -workload "Web Search" -records 200000 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"shift/internal/trace"
	"shift/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "Web Search", "catalog workload name")
		records = flag.Int64("records", 200000, "records to generate")
		coreID  = flag.Int("core", 0, "core whose stream to generate")
		out     = flag.String("out", "", "output trace file (binary codec)")
		in      = flag.String("in", "", "input trace file to inspect instead of generating")
		stats   = flag.Bool("stats", false, "print trace statistics")
		list    = flag.Bool("list", false, "list catalog workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range workload.Catalog() {
			fmt.Printf("%-16s footprint=%4.1fMB requestTypes=%2d os=%3dKB\n",
				p.Name, float64(p.FootprintBytes)/(1024*1024), p.RequestTypes,
				p.OSFootprintBytes/1024)
		}
		return
	}

	var reader trace.Reader
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		dec, err := trace.NewDecoder(f)
		if err != nil {
			fail(err)
		}
		reader = dec
	} else {
		p, err := workload.ByName(*name)
		if err != nil {
			fail(err)
		}
		w, err := workload.New(p)
		if err != nil {
			fail(err)
		}
		reader = trace.Limit(w.NewCoreReader(*coreID), *records)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		enc, err := trace.NewEncoder(f)
		if err != nil {
			fail(err)
		}
		n := int64(0)
		for {
			rec, err := reader.Next()
			if err != nil {
				break
			}
			if err := enc.Write(rec); err != nil {
				fail(err)
			}
			n++
		}
		if err := enc.Flush(); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d records to %s\n", n, *out)
		return
	}

	if *stats {
		st, err := trace.Measure(reader, 0)
		if err != nil {
			fail(err)
		}
		fmt.Printf("records:       %d\n", st.Records)
		fmt.Printf("instructions:  %d (%.1f per block visit)\n",
			st.Instructions, float64(st.Instructions)/float64(st.Records))
		fmt.Printf("footprint:     %d blocks (%.1f KB)\n",
			st.UniqueBlocks, float64(st.FootprintBytes())/1024)
		fmt.Printf("sequential:    %.1f%% of visits fall through\n", st.SeqFraction()*100)
		for k := trace.KindSeq; k <= trace.KindTrap; k++ {
			fmt.Printf("  %-7s %9d (%.2f%%)\n", k, st.KindCounts[k],
				float64(st.KindCounts[k])/float64(st.Records)*100)
		}
		return
	}

	fmt.Fprintln(os.Stderr, "tracegen: nothing to do (use -out, -stats, or -list)")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
