// Command shiftd serves the SHIFT experiment engine over HTTP: a
// long-running process that owns one shared engine and one result
// store, so every client — and every repeated figure sweep — amortizes
// simulations that any earlier request already paid for.
//
// Usage:
//
//	shiftd                                  # in-memory store on :8080
//	shiftd -addr :9000 -cache-dir ~/.shiftcache   # results survive restarts
//	shiftd -quick -parallel 8               # reduced default scale, 8 workers
//	shiftd -job-rate 4 -job-burst 256       # looser admission for trusted clients
//
// Endpoints (all under /v1; see the README for request/response
// samples):
//
//	POST   /v1/run              run one simulation cell (JSON config in, result out)
//	POST   /v1/grid             run a list of cells; results come back in cell order
//	POST   /v1/jobs             submit a cell list asynchronously (202 + job id)
//	GET    /v1/jobs/{id}        job status with partial results as cells land
//	GET    /v1/jobs/{id}/stream NDJSON: one event per completed cell, then "end"
//	DELETE /v1/jobs/{id}        cancel: queued cells dropped, running cells finish
//	GET    /v1/figures/{n}      render an experiment by name ("7", "fig7", "tableI", ...)
//	GET    /v1/healthz          liveness probe
//	GET    /v1/readyz           readiness probe: 503 + reasons while degraded
//	GET    /v1/stats            engine, store, queue, and admission counters (JSON)
//	GET    /v1/metrics          the same counters in Prometheus text format
//
// Concurrent identical requests share one simulation (the engine's
// in-flight deduplication), and every completed cell lands in the store,
// so a figure requested twice — or a cell shared by two figures — is
// simulated once. With -cache-dir that holds across restarts too.
//
// Asynchronous jobs go through per-client token-bucket admission
// (-job-rate/-job-burst; one token per cell; rejections answer 429 with
// Retry-After) into a bounded shortest-job-first queue (-job-queue,
// -job-workers) that prefers cheap sampled cells over exact ones. Job
// cells execute on the same engine as synchronous requests, so a
// drained job's results are bit-identical to /v1/grid for the same
// cells.
//
// The service degrades instead of failing: disk-store corruption is
// quarantined and self-heals on the next store, IO failures retry with
// backoff behind a circuit breaker that falls back to memory-only
// operation, simulation panics cost one cell rather than the process,
// -cell-timeout arms a watchdog that frees worker slots wedged by a
// stuck cell, and -job-retries re-enqueues job cells that failed
// transiently. /v1/readyz reports every active degradation.
//
// Shutdown is graceful: on SIGINT/SIGTERM the listener closes and
// in-flight requests get -grace to finish. A request abandoned by its
// client stops waiting immediately, but its simulation runs to
// completion and seeds the store — retries hit instead of recomputing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shift"
	"shift/internal/jobs"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheDir   = flag.String("cache-dir", "", "persist results under this directory (tiered memory-over-disk store); empty = in-memory only")
		parallel   = flag.Int("parallel", 0, "engine worker-pool size (0 = GOMAXPROCS)")
		quick      = flag.Bool("quick", false, "reduced default experiment scale (~6x faster; per-request overrides still apply)")
		grace      = flag.Duration("grace", 30*time.Second, "graceful-shutdown budget for in-flight requests")
		jobRate    = flag.Float64("job-rate", 1, "admission refill rate per client, tokens/second (one cell costs one token)")
		jobBurst   = flag.Float64("job-burst", 64, "admission bucket capacity per client; jobs with more cells are never admitted")
		jobQueue   = flag.Int("job-queue", 1024, "bound on queued (not yet running) job cells across all jobs")
		jobWorkers = flag.Int("job-workers", 0, "job scheduler goroutines (0 = GOMAXPROCS); the engine still bounds simulations")
		jobRetries = flag.Int("job-retries", 2, "extra attempts for job cells that fail transiently (watchdog timeouts); 0 disables")
		cellTmo    = flag.Duration("cell-timeout", 0, "per-cell watchdog: fail cells running longer than this with a timeout error (0 = off)")
		maxBody    = flag.Int64("max-body", 1<<20, "request-body size limit in bytes (413 beyond it)")
	)
	flag.Parse()

	base := shift.DefaultOptions()
	if *quick {
		base = shift.QuickOptions()
	}
	var (
		rs       shift.ResultStore
		storeDsc string
	)
	if *cacheDir != "" {
		tiered, err := shift.NewTieredStore(*cacheDir)
		if err != nil {
			log.Fatalf("shiftd: %v", err)
		}
		rs = tiered
		storeDsc = fmt.Sprintf("tiered memory-over-disk at %s (%d cells)", *cacheDir, tiered.Len())
	} else {
		rs = shift.NewResultCache()
		storeDsc = "in-memory"
	}
	engine := shift.NewEngine(*parallel, rs)
	engine.SetCellTimeout(*cellTmo)
	jm := jobs.New(jobs.Config{
		Workers:   *jobWorkers,
		MaxQueue:  *jobQueue,
		Rate:      *jobRate,
		Burst:     *jobBurst,
		Run:       engine.RunOne,
		Retries:   *jobRetries,
		Transient: shift.IsTransient,
	})
	defer jm.Close()
	srv := newServer(engine, rs, base, jm, *maxBody)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("shiftd listening on %s (store: %s)", *addr, storeDsc)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("shiftd: %v", err)
		}
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("shiftd: shutting down, waiting up to %s for in-flight requests", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("shiftd: shutdown: %v", err)
		}
	}
}
