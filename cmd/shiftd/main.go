// Command shiftd serves the SHIFT experiment engine over HTTP: a
// long-running process that owns one shared engine and one result
// store, so every client — and every repeated figure sweep — amortizes
// simulations that any earlier request already paid for.
//
// Usage:
//
//	shiftd                                  # in-memory store on :8080
//	shiftd -addr :9000 -cache-dir ~/.shiftcache   # results survive restarts
//	shiftd -state-dir /var/lib/shiftd       # accepted jobs survive restarts too
//	shiftd -quick -parallel 8               # reduced default scale, 8 workers
//	shiftd -job-rate 4 -job-burst 256       # looser admission for trusted clients
//	shiftd -worker -addr :8081              # cluster worker: serves batches + blobs
//	shiftd -peers http://w1:8081,http://w2:8082   # coordinator: shard sweeps across workers
//
// Endpoints (all under /v1; see the README for request/response
// samples):
//
//	POST   /v1/run              run one simulation cell (JSON config in, result out)
//	POST   /v1/grid             run a list of cells; results come back in cell order
//	POST   /v1/jobs             submit a cell list asynchronously (202 + job id)
//	GET    /v1/jobs/{id}        job status with partial results as cells land
//	GET    /v1/jobs/{id}/stream NDJSON: one event per completed cell, periodic
//	                            "heartbeat" events while idle, then "end"
//	DELETE /v1/jobs/{id}        cancel: queued cells dropped, running cells finish
//	GET    /v1/figures/{n}      render an experiment by name ("7", "fig7", "tableI", ...)
//	GET    /v1/healthz          liveness probe
//	GET    /v1/readyz           readiness probe: 503 + reasons while degraded
//	GET    /v1/stats            engine, store, queue, and admission counters (JSON)
//	GET    /v1/metrics          the same counters in Prometheus text format
//	POST   /v1/batch            execute a batch of cells (-worker; cluster-internal)
//	GET    /v1/blobs/{key}      raw result blobs, CRC footers intact (also PUT)
//	GET    /v1/cluster          coordinator membership, health, and routing counters
//	POST   /v1/cluster/join     worker announcing itself to the coordinator
//
// Cluster roles: a -worker process serves whole stream-key batches on
// its engine and exports its raw blob tier; a coordinator (-peers, or
// -coordinator with join-only membership) shards every sweep across the
// workers by stream key (-route: affinity, round-robin, least-loaded),
// probes their health (-cluster-heartbeat), re-routes batches off
// failed workers with jittered backoff (-batch-retries), hedges
// stragglers (-hedge-after), and degrades to in-process execution when
// no worker is routable — results stay byte-identical to a single
// host throughout. Point every node's -store-url at one shared blob
// store (any peer's /v1/blobs) and the cluster converges on one
// content-addressed result tier: a restarted worker re-serves the
// whole grid from the store without re-simulating a cell.
//
// Concurrent identical requests share one simulation (the engine's
// in-flight deduplication), and every completed cell lands in the store,
// so a figure requested twice — or a cell shared by two figures — is
// simulated once. With -cache-dir that holds across restarts too.
//
// Asynchronous jobs go through per-client token-bucket admission
// (-job-rate/-job-burst; one token per cell; rejections answer 429 with
// Retry-After) into a bounded shortest-job-first queue (-job-queue,
// -job-workers) that prefers cheap sampled cells over exact ones. Job
// cells execute on the same engine as synchronous requests, so a
// drained job's results are bit-identical to /v1/grid for the same
// cells.
//
// The service degrades instead of failing: disk-store corruption is
// quarantined and self-heals on the next store, IO failures retry with
// backoff behind a circuit breaker that falls back to memory-only
// operation, simulation panics cost one cell rather than the process,
// -cell-timeout arms a watchdog that frees worker slots wedged by a
// stuck cell, and -job-retries re-enqueues job cells that failed
// transiently. /v1/readyz reports every active degradation.
//
// With -state-dir, accepted jobs are durable: every submission,
// per-cell completion, and cancellation is appended to a CRC-framed
// write-ahead journal before it is acknowledged. On restart the journal
// is replayed — completed cells resolve through the result store
// without re-simulation, unfinished cells re-enter the queue and re-run
// to byte-identical results, and a torn final record (a crash mid-write)
// is discarded and counted, while interior corruption refuses to start.
// /v1/stats and /v1/metrics expose journal and recovery counters.
//
// Shutdown is graceful: on SIGINT/SIGTERM new job submissions get a
// clean 503 + Retry-After while running cells finish and journal within
// -grace; the queue is checkpointed (with -state-dir it re-admits on
// the next boot), then the listener closes and remaining in-flight
// requests get the rest of -grace to finish. A request abandoned by its
// client stops waiting immediately, but its simulation runs to
// completion and seeds the store — retries hit instead of recomputing.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"shift"
	"shift/internal/cluster"
	"shift/internal/jobs"
	"shift/internal/store"
	"shift/internal/wal"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheDir   = flag.String("cache-dir", "", "persist results under this directory (tiered memory-over-disk store); empty = in-memory only")
		stateDir   = flag.String("state-dir", "", "persist service state (job journal, cluster membership) under this directory; accepted jobs then survive restarts and crashes")
		parallel   = flag.Int("parallel", 0, "engine worker-pool size (0 = GOMAXPROCS)")
		quick      = flag.Bool("quick", false, "reduced default experiment scale (~6x faster; per-request overrides still apply)")
		grace      = flag.Duration("grace", 30*time.Second, "graceful-shutdown budget for in-flight requests")
		jobRate    = flag.Float64("job-rate", 1, "admission refill rate per client, tokens/second (one cell costs one token)")
		jobBurst   = flag.Float64("job-burst", 64, "admission bucket capacity per client; jobs with more cells are never admitted")
		jobQueue   = flag.Int("job-queue", 1024, "bound on queued (not yet running) job cells across all jobs")
		jobWorkers = flag.Int("job-workers", 0, "job scheduler goroutines (0 = GOMAXPROCS); the engine still bounds simulations")
		jobRetries = flag.Int("job-retries", 2, "extra attempts for job cells that fail transiently (watchdog timeouts); 0 disables")
		cellTmo    = flag.Duration("cell-timeout", 0, "per-cell watchdog: fail cells running longer than this with a timeout error (0 = off)")
		maxBody    = flag.Int64("max-body", 1<<20, "request-body size limit in bytes (413 beyond it)")
		streamBeat = flag.Duration("stream-heartbeat", 15*time.Second, "idle-stream heartbeat period for /v1/jobs/{id}/stream")

		worker      = flag.Bool("worker", false, "serve POST /v1/batch: execute batches for a cluster coordinator")
		coordinator = flag.Bool("coordinator", false, "shard sweeps across cluster workers (implied by -peers; workers may also POST /v1/cluster/join)")
		peers       = flag.String("peers", "", "comma-separated worker base URLs to coordinate across")
		route       = flag.String("route", "affinity", "batch routing policy: affinity, round-robin, or least-loaded")
		clusterBeat = flag.Duration("cluster-heartbeat", 2*time.Second, "worker health-probe period (0 = no background probing)")
		batchTmo    = flag.Duration("batch-timeout", 2*time.Minute, "per-batch dispatch timeout")
		batchRetry  = flag.Int("batch-retries", 0, "re-route attempts per batch after a worker failure (0 = every remaining worker, negative = none)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "speculatively duplicate a batch to its backup worker after this delay (0 = off)")
		storeURL    = flag.String("store-url", "", "shared remote blob store base URL (a peer's /v1/blobs); mutually exclusive with -cache-dir")
		joinURL     = flag.String("join", "", "coordinator base URL to announce this worker to at startup")
		advertise   = flag.String("advertise", "", "base URL peers reach this process at (with -join; default http://localhost<addr>)")
	)
	flag.Parse()

	base := shift.DefaultOptions()
	if *quick {
		base = shift.QuickOptions()
	}
	if *cacheDir != "" && *storeURL != "" {
		log.Fatal("shiftd: -cache-dir and -store-url are mutually exclusive")
	}
	var (
		rs       shift.ResultStore
		tiered   *shift.TieredStore
		storeDsc string
	)
	switch {
	case *cacheDir != "":
		t, err := shift.NewTieredStore(*cacheDir)
		if err != nil {
			log.Fatalf("shiftd: %v", err)
		}
		tiered = t
		rs = t
		storeDsc = fmt.Sprintf("tiered memory-over-disk at %s (%d cells)", *cacheDir, t.Len())
	case *storeURL != "":
		tiered = shift.NewTieredRemoteStore(*storeURL, nil)
		rs = tiered
		storeDsc = fmt.Sprintf("tiered memory-over-remote at %s", *storeURL)
	case *worker:
		// A worker without persistent storage still keeps a raw footered
		// blob tier, so it has bytes to serve to cluster peers.
		tiered = shift.NewTieredStoreOver(store.NewMem())
		rs = tiered
		storeDsc = "tiered memory-over-memory (blob tier exported)"
	default:
		rs = shift.NewResultCache()
		storeDsc = "in-memory"
	}
	engine := shift.NewEngine(*parallel, rs)
	engine.SetCellTimeout(*cellTmo)
	jcfg := jobs.Config{
		Workers:   *jobWorkers,
		MaxQueue:  *jobQueue,
		Rate:      *jobRate,
		Burst:     *jobBurst,
		Run:       engine.RunOne,
		Retries:   *jobRetries,
		Transient: shift.IsTransient,
	}
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			log.Fatalf("shiftd: %v", err)
		}
		journal, err := jobs.OpenWAL(filepath.Join(*stateDir, "jobs.wal"))
		if err != nil {
			// A corrupt journal interior fails loudly (wal.ErrCorrupt):
			// replaying past it could silently drop accepted jobs. The
			// operator keeps the evidence and decides; a torn tail — the
			// one record in flight when the last process died — is
			// discarded automatically and never reaches this path.
			log.Fatalf("shiftd: %v", err)
		}
		jcfg.Journal = journal
		jcfg.Lookup = rs.Lookup
	}
	jm, err := jobs.Open(jcfg)
	if err != nil {
		log.Fatalf("shiftd: %v", err)
	}
	defer jm.Close()
	if rec := jm.Recovery(); *stateDir != "" {
		log.Printf("shiftd: journal replayed: %d jobs re-admitted, %d already terminal, %d cells restored from the store, %d cells re-queued",
			rec.JobsRecovered, rec.JobsTerminal, rec.CellsRestored, rec.CellsRequeued)
		if rec.TailRecords > 0 {
			log.Printf("shiftd: journal: discarded torn tail (%d record, %d bytes) from the previous crash", rec.TailRecords, rec.TailBytes)
		}
	}
	srv := newServer(engine, rs, base, jm, *maxBody)
	srv.streamHeartbeat = *streamBeat
	srv.drainRetryAfter = int((*grace + time.Second - 1) / time.Second)
	if bt := tiered.BlobTier(); bt != nil {
		srv.blobs = store.NewBlobHandler(bt)
		if rem, ok := bt.(*store.Remote); ok {
			srv.remoteErrs = rem.Errors
		}
	}
	if *worker {
		srv.worker = cluster.NewWorker(engine)
	}
	if *peers != "" || *coordinator {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		coord, err := cluster.New(cluster.Config{
			Peers:          peerList,
			Route:          *route,
			HeartbeatEvery: *clusterBeat,
			BatchTimeout:   *batchTmo,
			Retries:        *batchRetry,
			HedgeAfter:     *hedgeAfter,
		})
		if err != nil {
			log.Fatalf("shiftd: %v", err)
		}
		defer coord.Close()
		engine.SetExecutor(coord)
		srv.cluster = coord
		if *stateDir != "" {
			persist, members, err := openMembership(filepath.Join(*stateDir, "cluster.wal"))
			if err != nil {
				log.Fatalf("shiftd: %v", err)
			}
			for _, m := range members {
				coord.Join(m)
			}
			if len(members) > 0 {
				log.Printf("shiftd: restored %d cluster members from %s", len(members), *stateDir)
			}
			srv.persistJoin = persist
		}
		log.Printf("shiftd coordinating %d workers (route: %s)", len(peerList), *route)
	}
	if *joinURL != "" {
		go announceJoin(*joinURL, *advertise, *addr)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("shiftd listening on %s (store: %s)", *addr, storeDsc)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("shiftd: %v", err)
		}
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("shiftd: shutting down, draining jobs and in-flight requests for up to %s", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		// Drain the job scheduler first, with the listener still open:
		// new submissions get a clean 503 + Retry-After instead of a
		// connection reset, status and stream endpoints keep serving
		// while running cells finish and journal, and a complete drain
		// checkpoints the queue. Only then does the listener close on
		// whatever grace budget remains.
		if err := jm.Drain(sctx); err != nil {
			log.Printf("shiftd: drain interrupted: %v (unfinished cells recover on the next start)", err)
		}
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("shiftd: shutdown: %v", err)
		}
	}
}

// openMembership opens (creating if absent) the persistent cluster
// membership log: one record per first-time worker join, replayed at
// boot so POST /v1/cluster/join survives a coordinator restart. The
// returned persist function durably appends one address; replayed
// addresses are compacted down to the deduplicated membership on open.
func openMembership(path string) (persist func(addr string), members []string, err error) {
	l, recs, _, err := wal.Open(path)
	if err != nil {
		return nil, nil, err
	}
	seen := make(map[string]bool, len(recs))
	for _, rec := range recs {
		addr := string(rec)
		if !seen[addr] {
			seen[addr] = true
			members = append(members, addr)
		}
	}
	if len(members) < len(recs) {
		compact := make([][]byte, len(members))
		for i, m := range members {
			compact[i] = []byte(m)
		}
		if err := l.Rewrite(compact); err != nil {
			return nil, nil, err
		}
	}
	return func(addr string) {
		if err := l.Append([]byte(addr)); err != nil {
			log.Printf("shiftd: persisting cluster join %s: %v", addr, err)
		}
	}, members, nil
}

// announceJoin posts this worker's reachable base URL to the
// coordinator's join endpoint, retrying briefly so a worker started a
// moment before its coordinator still registers. Failures are logged,
// not fatal: a coordinator can also list the worker in -peers.
func announceJoin(joinURL, advertise, addr string) {
	if advertise == "" {
		// Best-effort default for single-host clusters; multi-host
		// deployments must pass -advertise.
		if strings.HasPrefix(addr, ":") {
			advertise = "http://localhost" + addr
		} else {
			advertise = "http://" + addr
		}
	}
	body, _ := json.Marshal(map[string]string{"addr": advertise})
	target := strings.TrimRight(joinURL, "/") + "/v1/cluster/join"
	client := &http.Client{Timeout: 5 * time.Second}
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * time.Second)
		}
		resp, err := client.Post(target, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			log.Printf("shiftd: joined cluster at %s as %s", joinURL, advertise)
			return
		}
		lastErr = fmt.Errorf("status %s", resp.Status)
	}
	log.Printf("shiftd: joining cluster at %s failed: %v", joinURL, lastErr)
}
