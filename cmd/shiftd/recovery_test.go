package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"shift"
	"shift/internal/jobs"
)

// openDurable wires a journal-backed job manager exactly as main() does
// under -state-dir: the WAL at dir/jobs.wal plus the result store as
// the recovery lookup tier.
func openDurable(t *testing.T, dir string, rs shift.ResultStore, cfg jobs.Config) (*jobs.Manager, jobs.Journal) {
	t.Helper()
	journal, err := jobs.OpenWAL(filepath.Join(dir, "jobs.wal"))
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	cfg.Journal = journal
	cfg.Lookup = rs.Lookup
	jm, err := jobs.Open(cfg)
	if err != nil {
		t.Fatalf("jobs.Open: %v", err)
	}
	return jm, journal
}

// serveDurable exposes the manager over the full shiftd handler with
// main()'s drain Retry-After wiring.
func serveDurable(engine *shift.Engine, rs shift.ResultStore, jm *jobs.Manager) *httptest.Server {
	srv := newServer(engine, rs, testOpts(), jm, 1<<20)
	srv.drainRetryAfter = 5
	return httptest.NewServer(srv.handler())
}

// getStats decodes GET /v1/stats.
func getStats(t *testing.T, url string) statsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCrashRestartRecovery is the durability acceptance test: the
// process dies SIGKILL-style mid-job — one cell completed and
// journaled, one in flight, one still queued, a streaming client
// attached, and a torn half-written journal record on disk — and a
// fresh process over the same state dir and store finishes the job.
// The completed cell is restored from the store without re-simulation
// (asserted via the new engine's Simulated counter), the recovered
// results are byte-identical to /v1/grid, and the torn tail is
// discarded and reported.
func TestCrashRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	rs := shift.NewResultCache() // stands in for the durable -cache-dir tier

	// Instance 1: a single worker whose second cell blocks at a gate, so
	// the crash lands with deterministic job progress.
	engine1 := shift.NewEngine(0, rs)
	var passed atomic.Int32
	blockedAt := make(chan struct{}, 8)
	gate := make(chan struct{})
	jm1, journal1 := openDurable(t, dir, rs, jobs.Config{
		Workers: 1,
		Run: func(cfg shift.Config) (shift.RunResult, error) {
			if passed.Add(1) > 1 {
				blockedAt <- struct{}{}
				<-gate
				return shift.RunResult{}, errors.New("crashed mid-cell")
			}
			return engine1.RunOne(cfg)
		},
	})
	t.Cleanup(func() { jm1.Close() })
	ts1 := serveDurable(engine1, rs, jm1)

	// Ascending cost: the worker completes cell 0, blocks on cell 1,
	// leaves cell 2 queued.
	cells := []map[string]any{
		{"workload": "Web Search", "design": "Baseline", "measure_records": 1000},
		{"workload": "Web Search", "design": "SHIFT", "measure_records": 2000},
		{"workload": "Web Search", "design": "TIFS", "measure_records": 3000},
	}
	sub := submitJob(t, ts1.URL, cells)
	select {
	case <-blockedAt:
	case <-time.After(10 * time.Second):
		t.Fatal("second cell never started")
	}

	// A streaming client is mid-read when the process dies: it has seen
	// the first cell land.
	stream, err := http.Get(ts1.URL + sub.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stream.Body)
	if !sc.Scan() {
		t.Fatalf("stream yielded nothing: %v", sc.Err())
	}
	var first jobStreamEvent
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Type != "cell" || first.Index == nil || *first.Index != 0 {
		t.Fatalf("first stream event = %+v, want cell 0", first)
	}

	// Crash: the listener and journal vanish with the process; the
	// in-flight cell dies unjournaled. Only then is the gate released,
	// so its completion can never reach the journal or the store.
	stream.Body.Close()
	ts1.Close()
	journal1.Close()
	close(gate)

	// The crash also interrupted an append: a length prefix promising 64
	// bytes with only 10 behind it — exactly what a torn write leaves.
	f, err := os.OpenFile(filepath.Join(dir, "jobs.wal"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var torn [14]byte
	binary.BigEndian.PutUint32(torn[:4], 64)
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Instance 2: a fresh engine over the same store and state dir.
	engine2 := shift.NewEngine(0, rs)
	jm2, _ := openDurable(t, dir, rs, jobs.Config{Workers: 2, Run: engine2.RunOne})
	t.Cleanup(func() { jm2.Close() })
	ts2 := serveDurable(engine2, rs, jm2)
	t.Cleanup(ts2.Close)

	st := awaitJobState(t, ts2.URL, sub.ID, "done")
	if st.Completed != 3 || st.Failed != 0 {
		t.Fatalf("recovered job = %+v, want 3 completed", st)
	}

	// The journaled completed cell resolved through the store: only the
	// in-flight and queued cells were simulated again.
	if sim := engine2.Stats().Simulated; sim != 2 {
		t.Errorf("new process simulated %d cells, want 2 (stored cell must not re-run)", sim)
	}

	stats := getStats(t, ts2.URL)
	if stats.Recovery == nil || stats.Journal == nil {
		t.Fatalf("stats missing journal/recovery blocks: %+v", stats)
	}
	if r := stats.Recovery; r.JobsRecovered != 1 || r.CellsRestored != 1 || r.CellsRequeued != 2 {
		t.Errorf("recovery stats = %+v, want 1 job recovered, 1 restored, 2 requeued", r)
	}
	if r := stats.Recovery; r.TornTailRecords != 1 || r.TornTailBytes != int64(len(torn)) {
		t.Errorf("torn tail = %d records / %d bytes, want 1 / %d", r.TornTailRecords, r.TornTailBytes, len(torn))
	}

	// Acceptance golden: the recovered job's results are byte-identical
	// to the synchronous /v1/grid reply for the same cells.
	body, _ := json.Marshal(map[string]any{"cells": cells})
	resp, err := http.Post(ts2.URL+"/v1/grid", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var gridDoc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&gridDoc); err != nil {
		t.Fatal(err)
	}
	jresp, err := http.Get(ts2.URL + sub.StatusURL)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var jobDoc map[string]json.RawMessage
	if err := json.NewDecoder(jresp.Body).Decode(&jobDoc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gridDoc["results"], jobDoc["results"]) {
		t.Errorf("recovered job results differ from /v1/grid:\n--- grid ---\n%s\n--- job ---\n%s",
			gridDoc["results"], jobDoc["results"])
	}

	// The stream of the recovered job replays every cell, then "end" —
	// the client that was cut off mid-read reconnects and catches up.
	sresp, err := http.Get(ts2.URL + sub.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var events []jobStreamEvent
	sc = bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev jobStreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) != 4 || events[3].Type != "end" || events[3].State != "done" {
		t.Fatalf("recovered stream = %d events (%+v), want 3 cells + end/done", len(events), events)
	}

	// Fresh submissions never reuse a journaled ID.
	sub2 := submitJob(t, ts2.URL, cells[:1])
	if sub2.ID == sub.ID {
		t.Fatalf("new job reused recovered ID %s", sub.ID)
	}
	awaitJobState(t, ts2.URL, sub2.ID, "done")
}

// TestRecoverySkipsStoredCells is the focused regression for the
// restore path: a job that finished completely before the crash comes
// back terminal with its results, and the new engine simulates nothing.
func TestRecoverySkipsStoredCells(t *testing.T) {
	dir := t.TempDir()
	rs := shift.NewResultCache()

	engine1 := shift.NewEngine(0, rs)
	jm1, journal1 := openDurable(t, dir, rs, jobs.Config{Workers: 1, Run: engine1.RunOne})
	t.Cleanup(func() { jm1.Close() })
	ts1 := serveDurable(engine1, rs, jm1)
	sub := submitJob(t, ts1.URL, []map[string]any{
		{"workload": "Web Search", "design": "Baseline", "measure_records": 1000},
		{"workload": "Web Search", "design": "SHIFT", "measure_records": 1000},
	})
	want := awaitJobState(t, ts1.URL, sub.ID, "done")
	ts1.Close()
	journal1.Close() // crash: no drain, no checkpoint

	engine2 := shift.NewEngine(0, rs)
	jm2, _ := openDurable(t, dir, rs, jobs.Config{Workers: 1, Run: engine2.RunOne})
	t.Cleanup(func() { jm2.Close() })
	ts2 := serveDurable(engine2, rs, jm2)
	t.Cleanup(ts2.Close)

	got := getJobStatus(t, ts2.URL, sub.ID)
	if got.State != "done" || got.Completed != 2 {
		t.Fatalf("fully-done job after restart = %+v, want done/2", got)
	}
	for i := range want.Results {
		if got.Results[i] == nil || got.Results[i].Key != want.Results[i].Key {
			t.Fatalf("result %d changed across restart: %+v vs %+v", i, got.Results[i], want.Results[i])
		}
	}
	if sim := engine2.Stats().Simulated; sim != 0 {
		t.Errorf("restart simulated %d cells for a fully-stored job, want 0", sim)
	}
	if r := getStats(t, ts2.URL).Recovery; r == nil || r.JobsTerminal != 1 || r.CellsRequeued != 0 {
		t.Errorf("recovery stats = %+v, want 1 terminal job, 0 requeued", r)
	}
}

// TestDrainRefusesSubmissionsCleanly covers the shutdown window at the
// HTTP layer: while the manager drains, /v1/jobs answers a clean 503
// with an integer Retry-After (not a connection reset), /v1/readyz
// reports "draining", and after a restart over the checkpointed journal
// the service passes through "recovering" back to "ready" with the
// queued work finished.
func TestDrainRefusesSubmissionsCleanly(t *testing.T) {
	dir := t.TempDir()
	rs := shift.NewResultCache()

	engine1 := shift.NewEngine(0, rs)
	started := make(chan struct{}, 8)
	release := make(chan struct{}, 8)
	jm1, _ := openDurable(t, dir, rs, jobs.Config{
		Workers: 1,
		Run: func(cfg shift.Config) (shift.RunResult, error) {
			started <- struct{}{}
			<-release
			return engine1.RunOne(cfg)
		},
	})
	ts1 := serveDurable(engine1, rs, jm1)

	// One cell running (blocked), one queued.
	sub := submitJob(t, ts1.URL, []map[string]any{
		{"workload": "Web Search", "design": "Baseline", "measure_records": 1000},
		{"workload": "Web Search", "design": "SHIFT", "measure_records": 2000},
	})
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first cell never started")
	}

	// SIGTERM: main drains the manager while the listener stays open.
	drained := make(chan error, 1)
	go func() { drained <- jm1.Drain(context.Background()) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code, doc := getReadyz(t, ts1.URL); code == http.StatusServiceUnavailable && doc.Status == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Submissions during the window get a clean, parseable refusal.
	body, _ := json.Marshal(map[string]any{"cells": []map[string]any{
		{"workload": "Web Search", "design": "Baseline"},
	}})
	resp, err := http.Post(ts1.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submission during drain failed at transport level: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", resp.Header.Get("Retry-After"))
	}
	if !getStats(t, ts1.URL).Draining {
		t.Error("stats do not report draining")
	}

	// The running cell finishes; the drain completes with the queued
	// cell checkpointed, and the process exits.
	release <- struct{}{}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain never completed")
	}
	ts1.Close()
	jm1.Close()

	// Restart: the queued cell is re-admitted; while it re-runs the
	// service reports "recovering" at 200 — routable, catching up — and
	// settles back to "ready".
	engine2 := shift.NewEngine(0, rs)
	gate := make(chan struct{})
	jm2, _ := openDurable(t, dir, rs, jobs.Config{
		Workers: 1,
		Run: func(cfg shift.Config) (shift.RunResult, error) {
			<-gate
			return engine2.RunOne(cfg)
		},
	})
	t.Cleanup(func() { jm2.Close() })
	ts2 := serveDurable(engine2, rs, jm2)
	t.Cleanup(ts2.Close)

	if code, doc := getReadyz(t, ts2.URL); code != http.StatusOK || doc.Status != "recovering" || doc.Recovering != 1 {
		t.Fatalf("readyz during recovery = %d %+v, want 200 recovering/1", code, doc)
	}
	close(gate)
	awaitJobState(t, ts2.URL, sub.ID, "done")
	deadline = time.Now().Add(10 * time.Second)
	for {
		if code, doc := getReadyz(t, ts2.URL); code == http.StatusOK && doc.Status == "ready" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never returned to ready")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if r := getStats(t, ts2.URL).Recovery; r == nil || r.CellsRestored != 1 || r.CellsRequeued != 1 {
		t.Errorf("recovery after drained restart = %+v, want 1 restored / 1 requeued", r)
	}
}

// TestClusterMembershipSurvivesRestart: a worker that announced itself
// via POST /v1/cluster/join is still in the membership after the
// coordinator restarts over the same state dir.
func TestClusterMembershipSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.wal")
	persist, members, err := openMembership(path)
	if err != nil {
		t.Fatalf("openMembership: %v", err)
	}
	if len(members) != 0 {
		t.Fatalf("fresh membership log lists %v", members)
	}

	ts1, srv1 := newCoordinatorServer(t)
	srv1.persistJoin = persist
	const addr = "http://worker-a:8081"
	join := func(ts *httptest.Server) int {
		body, _ := json.Marshal(joinRequest{Addr: addr})
		resp, err := http.Post(ts.URL+"/v1/cluster/join", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Joining twice is idempotent: one membership entry, one record.
	if code := join(ts1); code != http.StatusOK {
		t.Fatalf("join = %d", code)
	}
	if code := join(ts1); code != http.StatusOK {
		t.Fatalf("repeat join = %d", code)
	}

	// Coordinator restart: replay the log, re-join, as main() does.
	persist2, members2, err := openMembership(path)
	if err != nil {
		t.Fatalf("reopen membership: %v", err)
	}
	_ = persist2
	if len(members2) != 1 || members2[0] != addr {
		t.Fatalf("replayed members = %v, want [%s]", members2, addr)
	}
	ts2, srv2 := newCoordinatorServer(t)
	for _, m := range members2 {
		srv2.cluster.Join(m)
	}
	resp, err := http.Get(ts2.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc clusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Workers) != 1 || doc.Workers[0].Addr != addr {
		t.Fatalf("restarted coordinator membership = %+v, want the joined worker", doc.Workers)
	}
}
