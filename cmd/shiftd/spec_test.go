package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
)

// searchSpec is an inline spec reproducing the catalog "Web Search"
// workload (same base, same seed), so wire-spec cells can be compared
// against catalog cells bit for bit.
var searchSpec = map[string]any{
	"name":     "Web Search",
	"seed":     107,
	"workload": map[string]any{"base": "Web Search"},
}

// TestRunInlineSpec proves POST /v1/run accepts an inline "spec" object
// and that a catalog-equivalent spec returns the byte-identical result
// under a distinct content-addressed key.
func TestRunInlineSpec(t *testing.T) {
	ts, _ := newTestServer(t)

	var catalog, spec runResponse
	if code := postJSON(t, ts.URL+"/v1/run",
		map[string]any{"workload": "Web Search", "design": "SHIFT"}, &catalog); code != http.StatusOK {
		t.Fatalf("catalog cell: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/run",
		map[string]any{"spec": searchSpec, "design": "SHIFT"}, &spec); code != http.StatusOK {
		t.Fatalf("spec cell: status %d", code)
	}
	if spec.Key == catalog.Key {
		t.Errorf("spec cell key %s aliases the catalog cell", spec.Key)
	}
	if !reflect.DeepEqual(spec.Result, catalog.Result) {
		t.Errorf("spec result differs from catalog result:\nspec:    %+v\ncatalog: %+v", spec.Result, catalog.Result)
	}

	// Resubmitting identical spec content must resolve to the same key
	// (content-addressed registration, served from the store).
	var again runResponse
	if code := postJSON(t, ts.URL+"/v1/run",
		map[string]any{"spec": searchSpec, "design": "SHIFT"}, &again); code != http.StatusOK {
		t.Fatalf("resubmit: status %d", code)
	}
	if again.Key != spec.Key || !reflect.DeepEqual(again.Result, spec.Result) {
		t.Error("identical spec content did not memoize to the same key and result")
	}
}

// TestRunInlineSpecValidation covers the 400 paths specific to inline
// specs, including the wire-security rule that trace-replay specs are
// rejected (the server must not read local files for remote clients).
func TestRunInlineSpecValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, body := range map[string]map[string]any{
		"spec and workload": {
			"workload": "Web Search", "design": "SHIFT",
			"spec": searchSpec,
		},
		"trace spec over the wire": {
			"design": "SHIFT",
			"spec":   map[string]any{"name": "sneaky", "trace": map[string]any{"path": "/etc/hostname"}},
		},
		"unknown spec field": {
			"design": "SHIFT",
			"spec":   map[string]any{"name": "x", "workloads": map[string]any{}},
		},
		"unknown base": {
			"design": "SHIFT",
			"spec":   map[string]any{"name": "x", "workload": map[string]any{"base": "nope"}},
		},
		"out-of-range knob": {
			"design": "SHIFT",
			"spec":   map[string]any{"name": "x", "workload": map[string]any{"loop_weight": 7}},
		},
		"mix pins cores": {
			"design": "SHIFT", "cores": 8,
			"spec": map[string]any{"name": "x", "mix": []any{
				map[string]any{"cores": 2, "workload": map[string]any{}},
				map[string]any{"cores": 2, "workload": map[string]any{}},
			}},
		},
	} {
		if code := postJSON(t, ts.URL+"/v1/run", body, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
}

// TestJobInlineSpecMatchesGrid runs spec cells through the async job
// API and demands the drained job's results match the synchronous
// /v1/grid reply byte for byte.
func TestJobInlineSpecMatchesGrid(t *testing.T) {
	ts, _ := newTestServer(t)
	cells := []map[string]any{
		{"spec": searchSpec, "design": "Baseline"},
		{"spec": searchSpec, "design": "SHIFT", "label": "spec-shift"},
	}
	body, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/grid", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid status %d", resp.StatusCode)
	}
	var gridDoc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&gridDoc); err != nil {
		t.Fatal(err)
	}
	var grid gridResponse
	if err := json.Unmarshal(gridDoc["results"], &grid.Results); err != nil {
		t.Fatal(err)
	}
	if len(grid.Results) != 2 {
		t.Fatalf("%d grid results, want 2", len(grid.Results))
	}
	// The default label renders the spec's display name, not its ID.
	if grid.Results[0].Label != "Web Search/Baseline" {
		t.Errorf("default spec label = %q, want Web Search/Baseline", grid.Results[0].Label)
	}

	sub := submitJob(t, ts.URL, cells)
	awaitJobState(t, ts.URL, sub.ID, "done")
	resp2, err := http.Get(ts.URL + sub.StatusURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var jobDoc map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&jobDoc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gridDoc["results"], jobDoc["results"]) {
		t.Errorf("job results differ from /v1/grid for spec cells:\n--- grid ---\n%s\n--- job ---\n%s",
			gridDoc["results"], jobDoc["results"])
	}
}

// TestFigureQuerySpecWorkload proves a registered spec is rejected by
// name on figure queries unless it was loaded in this process — the
// wire API never implicitly resolves spec IDs a client merely guesses —
// and that core-pinning is enforced on the workloads query parameter.
func TestFigureQueryValidatesWorkloads(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/figures/fig7?workloads=spec:ghost@0000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unregistered spec ID on figure query: status %d, want 400", resp.StatusCode)
	}
}
