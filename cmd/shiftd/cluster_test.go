package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shift"
	"shift/internal/cluster"
	"shift/internal/jobs"
	"shift/internal/store"
)

// newWorkerServer stands up a full shiftd handler in worker mode: the
// batch route on a fresh engine and the raw blob tier exported, as
// main() wires them under -worker.
func newWorkerServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	rs := shift.NewTieredStoreOver(store.NewMem())
	engine := shift.NewEngine(0, rs)
	jm := jobs.New(jobs.Config{Run: engine.RunOne})
	t.Cleanup(jm.Close)
	srv := newServer(engine, rs, testOpts(), jm, 1<<20)
	srv.worker = cluster.NewWorker(engine)
	srv.blobs = store.NewBlobHandler(rs.BlobTier())
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// newCoordinatorServer stands up a shiftd handler coordinating the
// given worker URLs, as main() wires them under -peers. The cluster
// routes only register when the coordinator is set before the handler
// is built, exactly as in main.
func newCoordinatorServer(t *testing.T, peers ...string) (*httptest.Server, *server) {
	t.Helper()
	rs := shift.NewResultCache()
	engine := shift.NewEngine(0, rs)
	jm := jobs.New(jobs.Config{Run: engine.RunOne})
	t.Cleanup(jm.Close)
	srv := newServer(engine, rs, testOpts(), jm, 1<<20)
	coord, err := cluster.New(cluster.Config{Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	engine.SetExecutor(coord)
	srv.cluster = coord
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func TestClusterRoutesAbsentByDefault(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/v1/cluster"},
		{http.MethodPost, "/v1/batch"},
		{http.MethodGet, "/v1/blobs"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404 on a non-cluster server", tc.method, tc.path, resp.StatusCode)
		}
	}
}

// TestCoordinatorShardsGridAcrossWorker runs a grid through a full
// coordinator shiftd against a full worker shiftd and checks the
// result matches in-process execution, the cluster counters move, and
// /v1/cluster reports the worker healthy.
func TestCoordinatorShardsGridAcrossWorker(t *testing.T) {
	workerTS, workerSrv := newWorkerServer(t)
	coordTS, _ := newCoordinatorServer(t, workerTS.URL)

	grid := gridRequest{Cells: []cellSpec{
		{Workload: "Web Search", Design: "SHIFT"},
		{Workload: "Web Search", Design: "Baseline"},
	}}
	var got gridResponse
	if code := postJSON(t, coordTS.URL+"/v1/grid", grid, &got); code != http.StatusOK {
		t.Fatalf("grid via coordinator = %d, want 200", code)
	}
	if len(got.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(got.Results))
	}

	// The same cells in-process must produce identical results.
	ref, _ := newTestServer(t)
	var want gridResponse
	if code := postJSON(t, ref.URL+"/v1/grid", grid, &want); code != http.StatusOK {
		t.Fatalf("grid in-process = %d, want 200", code)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Fatal("clustered grid differs from in-process grid")
	}

	if n := workerSrv.worker.Batches(); n == 0 {
		t.Error("worker executed no batches; grid was not routed")
	}
	resp, err := http.Get(coordTS.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cl clusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cl); err != nil {
		t.Fatal(err)
	}
	if cl.WorkersUp != 1 || cl.BatchesRouted == 0 || cl.FallbackCells != 0 {
		t.Errorf("cluster view = %+v, want 1 worker up, routed batches, no fallback", cl)
	}
}

func TestClusterJoinGrowsMembership(t *testing.T) {
	ts, srv := newCoordinatorServer(t)
	var out struct {
		Workers []cluster.MemberStatus `json:"workers"`
	}
	if code := postJSON(t, ts.URL+"/v1/cluster/join", joinRequest{Addr: "http://w9:8080"}, &out); code != http.StatusOK {
		t.Fatalf("join = %d, want 200", code)
	}
	if len(out.Workers) != 1 || out.Workers[0].Addr != "http://w9:8080" {
		t.Errorf("membership after join = %+v", out.Workers)
	}
	if len(srv.cluster.Members()) != 1 {
		t.Error("coordinator did not record the joined worker")
	}
	var errOut map[string]string
	if code := postJSON(t, ts.URL+"/v1/cluster/join", joinRequest{}, &errOut); code != http.StatusBadRequest {
		t.Errorf("join without addr = %d, want 400", code)
	}
}

// TestBlobRoutesServeRawTier checks the worker's /v1/blobs routes: a
// simulated cell's blob is served raw (CRC footer intact), the count
// route reports it, and malformed keys answer 400.
func TestBlobRoutesServeRawTier(t *testing.T) {
	ts, _ := newWorkerServer(t)
	var run runResponse
	cell := cellSpec{Workload: "Web Search", Design: "SHIFT"}
	if code := postJSON(t, ts.URL+"/v1/run", cell, &run); code != http.StatusOK {
		t.Fatalf("run = %d, want 200", code)
	}
	resp, err := http.Get(ts.URL + "/v1/blobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var count struct {
		Len int `json:"len"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&count); err != nil {
		t.Fatal(err)
	}
	if count.Len == 0 {
		t.Fatal("blob count = 0 after a simulated cell")
	}
	blobResp, err := http.Get(ts.URL + "/v1/blobs/" + run.Key)
	if err != nil {
		t.Fatal(err)
	}
	blobResp.Body.Close()
	if blobResp.StatusCode != http.StatusOK {
		t.Errorf("GET blob %s = %d, want 200", run.Key, blobResp.StatusCode)
	}
	badResp, err := http.Get(ts.URL + "/v1/blobs/not-hex!")
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET malformed blob key = %d, want 400", badResp.StatusCode)
	}
}

// TestStatsAndMetricsCarryClusterCounters checks satellite
// observability: /v1/stats grows a cluster block and /v1/metrics the
// shiftd_cluster_* family when coordinating.
func TestStatsAndMetricsCarryClusterCounters(t *testing.T) {
	workerTS, _ := newWorkerServer(t)
	coordTS, _ := newCoordinatorServer(t, workerTS.URL)
	grid := gridRequest{Cells: []cellSpec{{Workload: "Web Search", Design: "SHIFT"}}}
	var got gridResponse
	if code := postJSON(t, coordTS.URL+"/v1/grid", grid, &got); code != http.StatusOK {
		t.Fatalf("grid = %d, want 200", code)
	}

	resp, err := http.Get(coordTS.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil || st.Cluster.BatchesRouted == 0 || st.Cluster.WorkersUp != 1 {
		t.Errorf("stats cluster block = %+v, want routed batches and 1 worker up", st.Cluster)
	}

	mResp, err := http.Get(coordTS.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	raw, err := io.ReadAll(mResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"shiftd_cluster_workers_up 1",
		"shiftd_cluster_batches_routed_total",
		"shiftd_cluster_dispatch_errors_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestReadyzReportsDownWorkers checks that a coordinator whose only
// worker is unreachable degrades readiness with per-worker reasons.
func TestReadyzReportsDownWorkers(t *testing.T) {
	ts, srv := newCoordinatorServer(t, "http://127.0.0.1:1")
	// Drive the health probe to the down state deterministically.
	for i := 0; i < 3; i++ {
		srv.cluster.Probe()
	}
	code, body := getReadyz(t, ts.URL)
	if code != http.StatusServiceUnavailable || body.Status != "degraded" {
		t.Fatalf("readyz = %d %+v, want 503 degraded", code, body)
	}
	joined := strings.Join(body.Reasons, "\n")
	if !strings.Contains(joined, "cluster worker") || !strings.Contains(joined, "all 1 cluster workers down") {
		t.Errorf("reasons = %v, want per-worker and all-down lines", body.Reasons)
	}
}

// TestJobStreamHeartbeat checks satellite 2: an idle stream emits
// "heartbeat" events between cells, and the final event is still "end".
func TestJobStreamHeartbeat(t *testing.T) {
	rs := shift.NewResultCache()
	engine := shift.NewEngine(0, rs)
	slow := func(cfg shift.Config) (shift.RunResult, error) {
		time.Sleep(150 * time.Millisecond)
		return engine.RunOne(cfg)
	}
	jm := jobs.New(jobs.Config{Run: slow})
	t.Cleanup(jm.Close)
	srv := newServer(engine, rs, testOpts(), jm, 1<<20)
	srv.streamHeartbeat = 20 * time.Millisecond
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	grid := gridRequest{Cells: []cellSpec{{Workload: "Web Search", Design: "SHIFT"}}}
	body, err := json.Marshal(grid)
	if err != nil {
		t.Fatal(err)
	}
	subResp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer subResp.Body.Close()
	if subResp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", subResp.StatusCode)
	}
	var sub jobSubmitResponse
	if err := json.NewDecoder(subResp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + sub.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var types []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev jobStreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		types = append(types, ev.Type)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	beats, cells := 0, 0
	for _, typ := range types {
		switch typ {
		case "heartbeat":
			beats++
		case "cell":
			cells++
		}
	}
	if beats == 0 {
		t.Errorf("stream events %v carried no heartbeat during a %s-long cell", types, 150*time.Millisecond)
	}
	if cells != 1 || types[len(types)-1] != "end" {
		t.Errorf("stream events = %v, want one cell and a final end", types)
	}
}
