package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"shift"
	"shift/internal/cluster"
	"shift/internal/jobs"
	"shift/internal/store"
)

// healthStore wraps the in-memory cache with a canned StoreHealth, so
// readiness tests can dial in exact degradation states without breaking
// a real disk.
type healthStore struct {
	shift.ResultStore
	health shift.StoreHealth
}

func (s *healthStore) Health() shift.StoreHealth { return s.health }

// newHealthTestServer is newTestServer with a health-reporting store.
func newHealthTestServer(t *testing.T, health shift.StoreHealth) (*httptest.Server, *healthStore) {
	t.Helper()
	hs := &healthStore{ResultStore: shift.NewResultCache(), health: health}
	engine := shift.NewEngine(0, hs)
	jm := jobs.New(jobs.Config{Run: engine.RunOne})
	t.Cleanup(jm.Close)
	srv := newServer(engine, hs, testOpts(), jm, 1<<20)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, hs
}

func getReadyz(t *testing.T, url string) (int, readyzResponse) {
	t.Helper()
	resp, err := http.Get(url + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body readyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestReadyzReady(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := getReadyz(t, ts.URL)
	if code != http.StatusOK || body.Status != "ready" || len(body.Reasons) != 0 {
		t.Errorf("readyz = %d %+v, want 200 ready", code, body)
	}
}

func TestReadyzDegradedByStore(t *testing.T) {
	ts, hs := newHealthTestServer(t, shift.StoreHealth{
		BreakerState: store.BreakerOpen,
		BreakerTrips: 3,
		Quarantined:  2,
	})
	code, body := getReadyz(t, ts.URL)
	if code != http.StatusServiceUnavailable || body.Status != "degraded" {
		t.Fatalf("readyz = %d %+v, want 503 degraded", code, body)
	}
	if len(body.Reasons) != 2 {
		t.Fatalf("reasons = %v, want breaker + quarantine", body.Reasons)
	}
	if !strings.Contains(body.Reasons[0], "breaker open") || !strings.Contains(body.Reasons[1], "quarantined") {
		t.Errorf("reasons = %v", body.Reasons)
	}

	// Recovery flips it back to ready.
	hs.health = shift.StoreHealth{BreakerState: store.BreakerClosed}
	if code, body := getReadyz(t, ts.URL); code != http.StatusOK || body.Status != "ready" {
		t.Errorf("after recovery readyz = %d %+v, want 200 ready", code, body)
	}
}

// TestDegradedReasons drives the pure readiness rules across every
// condition, including the saturation rule that needs live engine
// shapes newHealthTestServer cannot pin down.
func TestDegradedReasons(t *testing.T) {
	for _, tt := range []struct {
		name      string
		es        shift.EngineStats
		js        jobs.Stats
		health    shift.StoreHealth
		hasHealth bool
		workers   []cluster.MemberStatus
		want      int
		contains  string
	}{
		{name: "all healthy", hasHealth: true, health: shift.StoreHealth{BreakerState: store.BreakerClosed}},
		{name: "no health reporter, idle"},
		{
			name:      "breaker half-open",
			hasHealth: true,
			health:    shift.StoreHealth{BreakerState: store.BreakerHalfOpen, BreakerTrips: 1},
			want:      1, contains: "half-open",
		},
		{
			name:      "quarantine only",
			hasHealth: true,
			health:    shift.StoreHealth{BreakerState: store.BreakerClosed, Quarantined: 5},
			want:      1, contains: "5 corrupt",
		},
		{
			name: "saturated with queued work",
			es:   shift.EngineStats{Inflight: 4, Capacity: 4},
			js:   jobs.Stats{QueueDepth: 7},
			want: 1, contains: "saturated",
		},
		{
			name: "saturated but nothing queued",
			es:   shift.EngineStats{Inflight: 4, Capacity: 4},
		},
		{
			name: "queued but slots free",
			es:   shift.EngineStats{Inflight: 2, Capacity: 4},
			js:   jobs.Stats{QueueDepth: 7},
		},
		{
			name: "all cluster workers up",
			workers: []cluster.MemberStatus{
				{Addr: "http://w1:8080", State: "up"},
				{Addr: "http://w2:8080", State: "up"},
			},
		},
		{
			name: "one worker suspect",
			workers: []cluster.MemberStatus{
				{Addr: "http://w1:8080", State: "up"},
				{Addr: "http://w2:8080", State: "suspect", Fails: 1, LastErr: "connection refused"},
			},
			want: 1, contains: "connection refused",
		},
		{
			name: "all workers down",
			workers: []cluster.MemberStatus{
				{Addr: "http://w1:8080", State: "down", Fails: 5},
			},
			want: 2, contains: "cluster worker http://w1:8080 down",
		},
	} {
		t.Run(tt.name, func(t *testing.T) {
			got := degradedReasons(tt.es, tt.js, tt.health, tt.hasHealth, tt.workers)
			if len(got) != tt.want {
				t.Fatalf("degradedReasons = %v, want %d reasons", got, tt.want)
			}
			if tt.contains != "" && !strings.Contains(got[0], tt.contains) {
				t.Errorf("reason %q does not mention %q", got[0], tt.contains)
			}
		})
	}
}

func TestStatsCarriesResilienceCounters(t *testing.T) {
	ts, _ := newHealthTestServer(t, shift.StoreHealth{
		Errors:       4,
		Quarantined:  1,
		BreakerState: store.BreakerOpen,
		BreakerTrips: 2,
		MemOnlyOps:   9,
	})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.StoreErrors != 4 || st.StoreQuarantined != 1 || st.StoreBreakerState != store.BreakerOpen ||
		st.StoreBreakerTrips != 2 || st.StoreMemOnlyOps != 9 {
		t.Errorf("stats resilience counters = %+v", st)
	}
}

func TestMetricsCarryResilienceCounters(t *testing.T) {
	ts, _ := newHealthTestServer(t, shift.StoreHealth{
		Errors:       4,
		BreakerState: store.BreakerOpen,
	})
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"shift_store_errors_total 4",
		"shiftd_store_breaker_open 1",
		"shiftd_cells_panicked_total 0",
		"shiftd_cells_timed_out_total 0",
		"shiftd_job_cells_retried_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
