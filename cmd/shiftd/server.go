package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"shift"
	"shift/internal/cluster"
	"shift/internal/jobs"
	"shift/internal/store"
	"shift/internal/validate"
)

// server wires the HTTP API to one shared engine and result store. All
// endpoints funnel their cells into the same engine, so concurrent
// requests — whether single cells, grids, whole figures, or async job
// cells — share simulations through the engine's in-flight
// deduplication and the store.
type server struct {
	engine   *shift.Engine
	store    shift.ResultStore
	base     shift.Options
	jobs     *jobs.Manager
	maxBody  int64
	started  time.Time
	requests atomic.Int64

	// Cluster wiring, set after construction when the process runs in a
	// cluster role (see main). cluster is the coordinator (batches from
	// this process shard across workers; /v1/cluster is served); worker
	// serves POST /v1/batch on the shared engine; blobs exports the
	// store's raw blob tier under /v1/blobs; remoteErrs reports the
	// remote-store failure count when the store's persistent tier is a
	// remote peer.
	cluster    *cluster.Coordinator
	worker     *cluster.Worker
	blobs      http.Handler
	remoteErrs func() int64

	// persistJoin durably records a first-time cluster join (set when
	// the coordinator runs with -state-dir, so membership learned via
	// POST /v1/cluster/join survives a restart). nil = no persistence.
	persistJoin func(addr string)

	// streamHeartbeat is the idle-stream heartbeat period for
	// /v1/jobs/{id}/stream (0 = 15s): an NDJSON "heartbeat" event keeps
	// idle proxies from dropping a silent connection between cells.
	streamHeartbeat time.Duration

	// drainRetryAfter is the Retry-After value (whole seconds, >= 1)
	// for submissions refused during graceful drain: the shutdown grace
	// budget, after which a restarted or replacement process can accept
	// the retry.
	drainRetryAfter int
}

// newServer builds a server around a shared engine, its store, the base
// options that requests override per-field, the async job manager, and
// the request-body size limit in bytes.
func newServer(engine *shift.Engine, rs shift.ResultStore, base shift.Options, jm *jobs.Manager, maxBody int64) *server {
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	return &server{engine: engine, store: rs, base: base, jobs: jm, maxBody: maxBody, started: time.Now()}
}

// handler routes the /v1 API. Method matching is handled by the
// ServeMux patterns (a POST to a GET route answers 405).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/grid", s.handleGrid)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/figures/{name}", s.handleFigure)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	if s.worker != nil {
		mux.HandleFunc("POST /v1/batch", s.worker.HandleBatch)
	}
	if s.blobs != nil {
		blobs := http.StripPrefix("/v1/blobs", s.blobs)
		mux.Handle("/v1/blobs", blobs)
		mux.Handle("/v1/blobs/", blobs)
	}
	if s.cluster != nil {
		mux.HandleFunc("GET /v1/cluster", s.handleCluster)
		mux.HandleFunc("POST /v1/cluster/join", s.handleClusterJoin)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// knownWorkload reports whether a request's workload name is runnable:
// a Table I catalog name or a spec ID registered earlier in this
// process — so request validation rejects unknown names with a 400
// instead of letting them fail deep in the engine as a 500.
func knownWorkload(name string) bool { return shift.KnownWorkload(name) }

// decodeBody decodes the request body as JSON into dst under the
// server's body-size limit, writing the error response itself (400 on
// malformed JSON, 413 when the body exceeds the limit) and reporting
// whether decoding succeeded.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes (see -max-body)", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return false
	}
	return true
}

// clientKey identifies the client for admission control: the
// X-Client-ID header when present, the remote IP otherwise.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// cellSpec is the wire form of one simulation cell. Zero-valued fields
// inherit the server's base options (scale, seed, core count), so the
// minimal request is just {"workload": ..., "design": ...}.
type cellSpec struct {
	// Label optionally names the cell in grid responses and error
	// messages; it has no effect on execution.
	Label string `json:"label,omitempty"`
	// Workload is a Table I workload name, or the ID of a spec compiled
	// earlier in this process ("spec:..."). Exactly one of Workload and
	// Spec is required.
	Workload string `json:"workload"`
	// Spec is an inline workload spec document (the JSON form accepted
	// by shift.LoadSpec). The cell runs the compiled spec exactly like a
	// catalog workload — same keys, memoization, and batching — and the
	// response's workload field carries the spec's display name.
	// Trace-replay specs are rejected over the wire (they name
	// server-local files); submit those through shiftsim -spec.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Design is a figure-legend design name: "Baseline", "NextLine",
	// "PIF_2K", "PIF_32K", "ZeroLat-SHIFT", "SHIFT", "TIFS" (required).
	Design string `json:"design"`
	// CoreType is "Fat-OoO", "Lean-OoO", or "Lean-IO" (default: the
	// server's base core type).
	CoreType string `json:"core_type,omitempty"`
	// Cores is the CMP size, 1-16 (default: base).
	Cores int `json:"cores,omitempty"`
	// HistEntries overrides the history capacity (0 = design default).
	HistEntries int `json:"hist_entries,omitempty"`
	// PredictionOnly and CommonalityMode select the trace-based
	// methodologies of Sections 5.2 and 3.
	PredictionOnly  bool `json:"prediction_only,omitempty"`
	CommonalityMode bool `json:"commonality_mode,omitempty"`
	// ElimProb is the Figure 1 miss-elimination probability.
	ElimProb float64 `json:"elim_prob,omitempty"`
	// WarmupRecords/MeasureRecords override the window lengths
	// (default: base).
	WarmupRecords  int64 `json:"warmup_records,omitempty"`
	MeasureRecords int64 `json:"measure_records,omitempty"`
	// Seed overrides the simulator seed (default: base).
	Seed *int64 `json:"seed,omitempty"`
	// SamplePeriod enables interval sampling with functional warming:
	// one interval of every SamplePeriod is simulated in detail and the
	// rest are fast-forwarded; the result carries standard-error and
	// confidence-interval fields and is an approximation, keyed
	// separately from exact results. 0 or 1 (the default) is exact
	// simulation.
	SamplePeriod int64 `json:"sample_period,omitempty"`
	// SampleInterval is the measured interval length in records per
	// core (0 = default 500).
	SampleInterval int64 `json:"sample_interval,omitempty"`
	// SampleWarmup is the fraction of each interval re-simulated in
	// detail before measuring (0 = default 0.25).
	SampleWarmup float64 `json:"sample_warmup,omitempty"`
	// SampleConfidence is the confidence level of the reported bounds:
	// 0.90, 0.95 (default on 0), or 0.99.
	SampleConfidence float64 `json:"sample_confidence,omitempty"`
}

// validate rejects field values the engine would only fail on deep
// inside a simulation, naming the offending wire field — so clients
// get a 400 up front instead of a misleading 500. The range rules are
// the shared constraint table of internal/validate; this wrapper only
// renders field names in the wire convention (quoted JSON names) and
// adds the workload/design/spec resolution rules.
func (c cellSpec) validate() error {
	if c.Workload == "" && len(c.Spec) == 0 {
		return errors.New("missing \"workload\" (or inline \"spec\")")
	}
	if c.Workload != "" && len(c.Spec) > 0 {
		return errors.New("\"workload\" and \"spec\" are mutually exclusive")
	}
	if c.Workload != "" && !knownWorkload(c.Workload) {
		return fmt.Errorf("unknown \"workload\" %q (valid: %s)",
			c.Workload, strings.Join(shift.Workloads(), ", "))
	}
	if c.Design == "" {
		return errors.New("missing \"design\"")
	}
	cell := validate.Cell{
		Cores:             c.Cores,
		CoresZeroInherits: true,
		HistEntries:       c.HistEntries,
		ElimProb:          c.ElimProb,
		WarmupRecords:     c.WarmupRecords,
		MeasureRecords:    c.MeasureRecords,
		SamplePeriod:      c.SamplePeriod,
		SampleInterval:    c.SampleInterval,
		SampleWarmup:      c.SampleWarmup,
		SampleConfidence:  c.SampleConfidence,
	}
	if fe := cell.Check(); fe != nil {
		return fmt.Errorf("%q %s", fe.Field, fe.Msg)
	}
	return nil
}

// config resolves the wire cell against the server's base options.
func (c cellSpec) config(base shift.Options) (shift.Config, error) {
	if err := c.validate(); err != nil {
		return shift.Config{}, err
	}
	workloadID := c.Workload
	if len(c.Spec) > 0 {
		// Compile and register the inline spec; the cell then runs its
		// content-addressed ID like any workload name. Identical spec
		// content registers once, so repeated submissions memoize and
		// batch against each other.
		id, err := shift.LoadSpecRestricted(c.Spec)
		if err != nil {
			return shift.Config{}, fmt.Errorf("\"spec\": %w", err)
		}
		workloadID = id
	}
	d, err := shift.ParseDesign(c.Design)
	if err != nil {
		return shift.Config{}, err
	}
	ct := base.CoreType
	if c.CoreType != "" {
		if ct, err = shift.ParseCoreType(c.CoreType); err != nil {
			return shift.Config{}, err
		}
	}
	cfg := shift.Config{
		Workload:        workloadID,
		Design:          d,
		CoreType:        ct,
		Cores:           base.Cores,
		HistEntries:     c.HistEntries,
		PredictionOnly:  c.PredictionOnly,
		CommonalityMode: c.CommonalityMode,
		ElimProb:        c.ElimProb,
		WarmupRecords:   base.WarmupRecords,
		MeasureRecords:  base.MeasureRecords,
		Seed:            base.Seed,
	}
	if c.Cores != 0 {
		cfg.Cores = c.Cores
	}
	if c.WarmupRecords != 0 {
		cfg.WarmupRecords = c.WarmupRecords
	}
	if c.MeasureRecords != 0 {
		cfg.MeasureRecords = c.MeasureRecords
	}
	if c.Seed != nil {
		cfg.Seed = *c.Seed
	}
	cfg.Sampling = shift.Sampling{
		Period:          c.SamplePeriod,
		IntervalRecords: c.SampleInterval,
		WarmupFraction:  c.SampleWarmup,
		Confidence:      c.SampleConfidence,
	}
	// Cross-field rules that need the base-resolved values: a mix spec
	// pins the core count, and the sampling chunk (period x interval)
	// must fit at least twice in the resolved measurement window — the
	// engine needs two measured intervals for a standard error, and
	// catching these here turns mid-simulation failures into 400s.
	if n := shift.WorkloadCores(workloadID); n != 0 && n != cfg.Cores {
		return shift.Config{}, fmt.Errorf("\"cores\" workload is a %d-core mix, configured for %d cores", n, cfg.Cores)
	}
	if fe := validate.SampledWindow(cfg.Sampling.Period, cfg.Sampling.IntervalRecords, cfg.MeasureRecords); fe != nil {
		return shift.Config{}, fmt.Errorf("%q %s", fe.Field, fe.Msg)
	}
	return cfg, nil
}

// runResponse is the POST /v1/run reply.
type runResponse struct {
	// Key is the cell's content address (shift.Config.Key): the same
	// key always denotes the same bit-identical result.
	Key string `json:"key"`
	// Result is the simulation result (field names as in
	// shift.RunResult).
	Result shift.RunResult `json:"result"`
}

// handleRun serves POST /v1/run: one cell in, one result out.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var spec cellSpec
	if !s.decodeBody(w, r, &spec) {
		return
	}
	cfg, err := spec.config(s.base)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := await(r.Context(), func() (shift.RunResult, error) {
		return s.engine.RunOne(cfg)
	})
	if err != nil {
		writeRunError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, runResponse{Key: cfg.Key(), Result: res})
}

// gridRequest is the POST /v1/grid and POST /v1/jobs body.
type gridRequest struct {
	// Cells is the experiment grid; duplicates are simulated once.
	Cells []cellSpec `json:"cells"`
}

// gridResponse is the POST /v1/grid reply: one entry per requested
// cell, in request order (the engine's deterministic cell-keyed
// merge — never completion order).
type gridResponse struct {
	Results []gridCellResult `json:"results"`
}

// gridCellResult pairs one requested cell with its result.
type gridCellResult struct {
	Label  string          `json:"label,omitempty"`
	Key    string          `json:"key"`
	Result shift.RunResult `json:"result"`
}

// cellsFromSpecs validates and resolves a wire cell list; the error
// names the failing cell and field.
func (s *server) cellsFromSpecs(specs []cellSpec) ([]shift.Cell, error) {
	cells := make([]shift.Cell, len(specs))
	for i, spec := range specs {
		cfg, err := spec.config(s.base)
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
		label := spec.Label
		if label == "" {
			label = fmt.Sprintf("%s/%s", shift.WorkloadDisplayName(cfg.Workload), cfg.Design)
		}
		cells[i] = shift.Cell{Label: label, Config: cfg}
	}
	return cells, nil
}

// handleGrid serves POST /v1/grid: a cell list in, results in cell
// order out.
func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req gridRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty \"cells\""))
		return
	}
	cells, err := s.cellsFromSpecs(req.Cells)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	results, err := await(r.Context(), func() ([]shift.RunResult, error) {
		return s.engine.RunAll(cells)
	})
	if err != nil {
		writeRunError(w, r, err)
		return
	}
	resp := gridResponse{Results: make([]gridCellResult, len(cells))}
	for i := range cells {
		resp.Results[i] = gridCellResult{
			Label:  cells[i].Label,
			Key:    cells[i].Config.Key(),
			Result: results[i],
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// jobSubmitResponse is the POST /v1/jobs reply (202 Accepted).
type jobSubmitResponse struct {
	// ID is the job identifier for the status/stream/cancel endpoints.
	ID string `json:"id"`
	// State is the job's initial state ("queued").
	State string `json:"state"`
	// Cells is the number of scheduled cells.
	Cells int `json:"cells"`
	// StatusURL and StreamURL are the polling and streaming endpoints.
	StatusURL string `json:"status_url"`
	StreamURL string `json:"stream_url"`
}

// handleJobSubmit serves POST /v1/jobs: the same body as /v1/grid, but
// instead of blocking it answers 202 with a job id after token-bucket
// admission (429 + Retry-After when the client's bucket is dry, 503 +
// Retry-After when the queue is full). One admission token is charged
// per cell.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req gridRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty \"cells\""))
		return
	}
	cells, err := s.cellsFromSpecs(req.Cells)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Refuse before charging the admission bucket when shutdown has
	// begun: the rejection is free to retry elsewhere.
	if s.jobs.Draining() {
		s.writeDraining(w)
		return
	}
	d := s.jobs.Admit(clientKey(r), len(cells))
	if d.Never {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("job of %d cells exceeds the admission burst capacity (see -job-burst)", len(cells)))
		return
	}
	if !d.OK {
		w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(d.RetryAfter)))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("admission bucket empty; retry in %s", d.RetryAfter))
		return
	}
	j, err := s.jobs.SubmitFrom(clientKey(r), cells)
	if errors.Is(err, jobs.ErrDraining) {
		// The drain began between the check above and the submit; the
		// answer is the same clean 503.
		s.writeDraining(w)
		return
	}
	if errors.Is(err, jobs.ErrQueueFull) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, jobSubmitResponse{
		ID:        j.ID(),
		State:     string(jobs.StateQueued),
		Cells:     len(cells),
		StatusURL: "/v1/jobs/" + j.ID(),
		StreamURL: "/v1/jobs/" + j.ID() + "/stream",
	})
}

// writeDraining answers a submission during graceful shutdown: a clean
// 503 with an integer Retry-After covering the drain grace, so clients
// and proxies see an orderly refusal — never a connection reset — and
// know when a restarted or replacement process can take the retry.
func (s *server) writeDraining(w http.ResponseWriter) {
	retry := s.drainRetryAfter
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusServiceUnavailable,
		errors.New("shutting down: draining running cells; retry against another instance or after restart"))
}

// retrySeconds renders a Retry-After duration as whole seconds,
// rounded up to at least 1 — "Retry-After: 0" invites an immediate,
// certainly-rejected retry.
func retrySeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// jobStatusResponse is the GET /v1/jobs/{id} (and DELETE) reply:
// lifecycle state plus partial results as they land. Results is
// index-aligned with the submitted cells; entries are null until their
// cell completes, and once the state is "done" the array is
// bit-identical to the synchronous POST /v1/grid "results" for the
// same cells.
type jobStatusResponse struct {
	// ID is the job identifier.
	ID string `json:"id"`
	// State is "queued", "running", "done", "failed", or "cancelled".
	State string `json:"state"`
	// CancelRequested reports a pending cancellation (the state turns
	// "cancelled" once running cells drain).
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Cells, Completed, Failed, and Dropped count the job's cells by
	// outcome (Dropped = queued cells discarded by cancellation).
	Cells     int `json:"cells"`
	Completed int `json:"completed"`
	Failed    int `json:"failed,omitempty"`
	Dropped   int `json:"dropped,omitempty"`
	// Created, Started, and Finished are lifecycle timestamps.
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Results holds one entry per submitted cell (null until the cell
	// completes), in request order — never completion order.
	Results []*gridCellResult `json:"results"`
	// CellErrors maps cell index to error message for failed cells.
	CellErrors map[int]string `json:"cell_errors,omitempty"`
}

// jobStatus converts a registry snapshot to the wire form.
func jobStatus(st jobs.Status) jobStatusResponse {
	resp := jobStatusResponse{
		ID:              st.ID,
		State:           string(st.State),
		CancelRequested: st.CancelRequested && !st.State.Terminal(),
		Cells:           st.Cells,
		Completed:       st.Completed,
		Failed:          st.Failed,
		Dropped:         st.Dropped,
		Created:         st.Created,
		Results:         make([]*gridCellResult, st.Cells),
	}
	if !st.Started.IsZero() {
		t := st.Started
		resp.Started = &t
	}
	if !st.Finished.IsZero() {
		t := st.Finished
		resp.Finished = &t
	}
	for i := 0; i < st.Cells; i++ {
		if st.Done[i] {
			resp.Results[i] = &gridCellResult{Label: st.Labels[i], Key: st.Keys[i], Result: st.Results[i]}
		}
		if st.CellErrs[i] != "" {
			if resp.CellErrors == nil {
				resp.CellErrors = make(map[int]string)
			}
			resp.CellErrors[i] = st.CellErrs[i]
		}
	}
	return resp
}

// handleJobStatus serves GET /v1/jobs/{id}.
func (s *server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, jobStatus(j.Snapshot()))
}

// handleJobCancel serves DELETE /v1/jobs/{id}: queued cells are
// dropped, running cells finish and publish their results (the engine
// seeds the store either way). Cancelling a finished job is a no-op;
// the reply is the job's status after the cancellation request.
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, jobStatus(j.Snapshot()))
}

// jobStreamEvent is one NDJSON line of GET /v1/jobs/{id}/stream: a
// "cell" event per finished cell as it lands, a "heartbeat" event on
// every idle period (see -stream-heartbeat) so proxies and clients can
// tell a slow simulation from a dead connection, then one final "end"
// event carrying the job's terminal state.
type jobStreamEvent struct {
	// Type is "cell", "heartbeat", or "end".
	Type string `json:"type"`
	// Index is the cell's position in the submitted job ("cell").
	Index *int `json:"index,omitempty"`
	// Label and Key identify the cell ("cell").
	Label string `json:"label,omitempty"`
	Key   string `json:"key,omitempty"`
	// Result is the cell's result ("cell", success only).
	Result *shift.RunResult `json:"result,omitempty"`
	// Error is the cell's error message ("cell", failure only).
	Error string `json:"error,omitempty"`
	// State is the job's terminal state ("end").
	State string `json:"state,omitempty"`
}

// handleJobStream serves GET /v1/jobs/{id}/stream: newline-delimited
// JSON, one event per completed cell, replayed from the job's start and
// then followed live until the job reaches a terminal state or the
// client disconnects. While no cell finishes, a "heartbeat" event is
// emitted every streamHeartbeat period so the connection never goes
// silent long enough for an idle-timeout proxy to cut it.
func (s *server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	// Push the header out now: a client that opens the stream before any
	// cell has finished must still see the 200 immediately.
	if fl != nil {
		fl.Flush()
	}
	enc := json.NewEncoder(w)
	beat := s.streamHeartbeat
	if beat <= 0 {
		beat = 15 * time.Second
	}
	ticker := time.NewTicker(beat)
	defer ticker.Stop()
	n := 0
	for {
		evs, terminal, changed := j.EventsSince(n)
		for _, ev := range evs {
			we := jobStreamEvent{Type: ev.Type}
			switch ev.Type {
			case jobs.EventCell:
				idx := ev.Index
				we.Index = &idx
				we.Label = ev.Label
				we.Key = ev.Key
				if ev.Err != "" {
					we.Error = ev.Err
				} else {
					res := ev.Result
					we.Result = &res
				}
			case jobs.EventEnd:
				we.State = string(ev.State)
			}
			if err := enc.Encode(we); err != nil {
				log.Printf("shiftd: streaming job %s: %v", j.ID(), err)
				return
			}
		}
		n += len(evs)
		if len(evs) > 0 {
			ticker.Reset(beat)
			if fl != nil {
				fl.Flush()
			}
		}
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-changed:
		case <-ticker.C:
			if err := enc.Encode(jobStreamEvent{Type: "heartbeat"}); err != nil {
				log.Printf("shiftd: streaming job %s: %v", j.ID(), err)
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
	}
}

// handleFigure serves GET /v1/figures/{name}: the named experiment
// driver's rendered output as text/plain — byte-identical to `shiftsim
// -experiment {name}` at the same options, since both dispatch through
// shift.RunExperiment. Query parameters quick, workloads (comma-
// separated), cores, seed, warmup, measure, sample (a sampling period;
// the figure is then regenerated in sampled mode, trading exactness
// for speed), sample_interval, sample_warm, and sample_confidence
// override the server's base options per request.
func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	opts, err := s.optionsFromQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	out, err := await(r.Context(), func() (string, error) {
		return shift.RunExperiment(name, opts)
	})
	if err != nil {
		if errors.Is(err, shift.ErrUnknownExperiment) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeRunError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}

// optionsFromQuery applies per-request query overrides to the base
// options, validates them (unknown workloads, out-of-range cores, and
// malformed sampling policies are client errors, not simulation
// failures), and routes the work through the shared engine.
func (s *server) optionsFromQuery(q url.Values) (shift.Options, error) {
	o := s.base
	if v := q.Get("quick"); v != "" {
		quick, err := strconv.ParseBool(v)
		if err != nil {
			return o, fmt.Errorf("quick: %w", err)
		}
		if quick {
			o = shift.QuickOptions()
		}
	}
	if v := q.Get("workloads"); v != "" {
		o.Workloads = nil
		for _, w := range strings.Split(v, ",") {
			o.Workloads = append(o.Workloads, strings.TrimSpace(w))
		}
	}
	for _, p := range []struct {
		name string
		dst  *int64
	}{
		{"warmup", &o.WarmupRecords},
		{"measure", &o.MeasureRecords},
		{"seed", &o.Seed},
		{"sample", &o.Sampling.Period},
		{"sample_interval", &o.Sampling.IntervalRecords},
	} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return o, fmt.Errorf("%s: %w", p.name, err)
			}
			*p.dst = n
		}
	}
	for _, p := range []struct {
		name string
		dst  *float64
	}{
		{"sample_warm", &o.Sampling.WarmupFraction},
		{"sample_confidence", &o.Sampling.Confidence},
	} {
		if v := q.Get(p.name); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return o, fmt.Errorf("%s: %w", p.name, err)
			}
			*p.dst = f
		}
	}
	if v := q.Get("cores"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return o, fmt.Errorf("cores: %w", err)
		}
		o.Cores = n
	}
	if err := validateOptions(o); err != nil {
		return o, err
	}
	// All figure cells run on the shared engine: one store, one
	// in-flight table, across every concurrent request.
	o.Engine = s.engine
	return o, nil
}

// queryName maps the shared validator's canonical (JSON wire) field
// names to the figure endpoint's query-parameter spelling.
var queryName = map[string]string{
	"warmup_records":  "warmup",
	"measure_records": "measure",
	"sample_period":   "sample",
	"sample_warmup":   "sample_warm",
}

// queryField renders a canonical field name as its query parameter.
func queryField(field string) string {
	if q, ok := queryName[field]; ok {
		return q
	}
	return field
}

// validateOptions rejects query-override combinations the experiment
// drivers would only fail on mid-run, naming the offending query
// parameter. The range rules are the shared constraint table of
// internal/validate; only the field-name spelling is endpoint-local.
func validateOptions(o shift.Options) error {
	for _, w := range o.Workloads {
		if !knownWorkload(w) {
			return fmt.Errorf("workloads: unknown workload %q (valid: %s)",
				w, strings.Join(shift.Workloads(), ", "))
		}
		if n := shift.WorkloadCores(w); n != 0 && n != o.Cores {
			return fmt.Errorf("cores: workload %q is a %d-core mix, configured for %d cores", w, n, o.Cores)
		}
	}
	cell := validate.Cell{
		Cores:            o.Cores,
		WarmupRecords:    o.WarmupRecords,
		MeasureRecords:   o.MeasureRecords,
		SamplePeriod:     o.Sampling.Period,
		SampleInterval:   o.Sampling.IntervalRecords,
		SampleWarmup:     o.Sampling.WarmupFraction,
		SampleConfidence: o.Sampling.Confidence,
	}
	if fe := cell.Check(); fe != nil {
		return fmt.Errorf("%s: %s", queryField(fe.Field), fe.Msg)
	}
	if fe := validate.SampledWindow(o.Sampling.Period, o.Sampling.IntervalRecords, o.MeasureRecords); fe != nil {
		return fmt.Errorf("%s: %s", queryField(fe.Field), fe.Msg)
	}
	return nil
}

// handleHealthz serves GET /v1/healthz.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// clusterResponse is the GET /v1/cluster reply: the coordinator's
// membership view with per-worker health, plus the routing counters.
type clusterResponse struct {
	// Workers is the per-worker health snapshot, address-ordered.
	Workers []cluster.MemberStatus `json:"workers"`
	// WorkersUp/WorkersSuspect/WorkersDown count workers by state.
	WorkersUp      int `json:"workers_up"`
	WorkersSuspect int `json:"workers_suspect"`
	WorkersDown    int `json:"workers_down"`
	// BatchesRouted/BatchesRerouted/BatchesHedged count dispatched
	// batches by path; FallbackCells counts cells degraded to
	// in-process execution; DispatchErrors counts transport failures.
	BatchesRouted   int64 `json:"batches_routed"`
	BatchesRerouted int64 `json:"batches_rerouted"`
	BatchesHedged   int64 `json:"batches_hedged"`
	FallbackCells   int64 `json:"fallback_cells"`
	DispatchErrors  int64 `json:"dispatch_errors"`
}

// handleCluster serves GET /v1/cluster (coordinator only).
func (s *server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	st := s.cluster.Stats()
	writeJSON(w, http.StatusOK, clusterResponse{
		Workers:         s.cluster.Members(),
		WorkersUp:       st.WorkersUp,
		WorkersSuspect:  st.WorkersSuspect,
		WorkersDown:     st.WorkersDown,
		BatchesRouted:   st.BatchesRouted,
		BatchesRerouted: st.BatchesRerouted,
		BatchesHedged:   st.BatchesHedged,
		FallbackCells:   st.CellsFallback,
		DispatchErrors:  st.DispatchErrors,
	})
}

// joinRequest is the POST /v1/cluster/join body: a worker announcing
// its reachable base URL (shiftd -worker -join posts this at startup).
type joinRequest struct {
	// Addr is the worker's base URL ("host:port" or "http://host:port").
	Addr string `json:"addr"`
}

// handleClusterJoin serves POST /v1/cluster/join (coordinator only):
// adds the worker to the membership, idempotently, and answers with
// the updated membership view.
func (s *server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Addr == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"addr\""))
		return
	}
	if s.cluster.Join(req.Addr) && s.persistJoin != nil {
		s.persistJoin(req.Addr)
	}
	writeJSON(w, http.StatusOK, map[string]any{"workers": s.cluster.Members()})
}

// storeHealth reports the result store's failure-domain health when the
// store exposes it (TieredStore and DiskStore do; the in-memory cache
// has no failure domain and reports nothing).
func (s *server) storeHealth() (shift.StoreHealth, bool) {
	if hr, ok := s.store.(shift.HealthReporter); ok {
		return hr.Health(), true
	}
	return shift.StoreHealth{}, false
}

// readyzResponse is the GET /v1/readyz reply.
type readyzResponse struct {
	// Status is the lifecycle phase: "ready" (200), "recovering" (200:
	// journal replay re-admitted jobs that are still re-running, the
	// service is fully usable), "degraded" (503: serving but impaired),
	// or "draining" (503: graceful shutdown in progress, running cells
	// finishing, submissions refused).
	Status string `json:"status"`
	// Reasons lists each active degradation, one human-readable line
	// per condition (degraded only).
	Reasons []string `json:"reasons,omitempty"`
	// Recovering is the number of recovered jobs still working toward a
	// terminal state ("recovering" only).
	Recovering int `json:"recovering,omitempty"`
}

// degradedReasons evaluates the readiness conditions: the store's
// circuit breaker not closed (persistence is being bypassed),
// quarantined corrupt blobs on disk (operator attention needed), a
// saturated worker pool with job cells still queued (new work will
// wait), and unhealthy cluster workers (nil workers = not
// coordinating): each suspect or down worker gets its own reason with
// the last observed error, and a cluster with no routable worker at
// all reports the in-process degradation explicitly. Pure —
// handleReadyz feeds it live snapshots, tests feed it fixtures.
func degradedReasons(es shift.EngineStats, js jobs.Stats, health shift.StoreHealth, hasHealth bool, workers []cluster.MemberStatus) []string {
	var reasons []string
	if hasHealth {
		switch health.BreakerState {
		case store.BreakerOpen:
			reasons = append(reasons, fmt.Sprintf(
				"store circuit breaker open (%d trips): disk persistence suspended, serving memory-only", health.BreakerTrips))
		case store.BreakerHalfOpen:
			reasons = append(reasons, fmt.Sprintf(
				"store circuit breaker half-open (%d trips): probing disk recovery", health.BreakerTrips))
		}
		if health.Quarantined > 0 {
			reasons = append(reasons, fmt.Sprintf(
				"%d corrupt result blobs quarantined: inspect the store's quarantine/ directory", health.Quarantined))
		}
	}
	if es.Capacity > 0 && es.Inflight >= es.Capacity && js.QueueDepth > 0 {
		reasons = append(reasons, fmt.Sprintf(
			"worker pool saturated: %d/%d slots busy, %d job cells queued", es.Inflight, es.Capacity, js.QueueDepth))
	}
	routable := 0
	for _, m := range workers {
		switch m.State {
		case "up":
			routable++
		default:
			reason := fmt.Sprintf("cluster worker %s %s (%d consecutive failures)", m.Addr, m.State, m.Fails)
			if m.LastErr != "" {
				reason += ": " + m.LastErr
			}
			reasons = append(reasons, reason)
			if m.State == "suspect" {
				routable++
			}
		}
	}
	if len(workers) > 0 && routable == 0 {
		reasons = append(reasons, fmt.Sprintf(
			"all %d cluster workers down: batches executing in-process", len(workers)))
	}
	return reasons
}

// handleReadyz serves GET /v1/readyz: 200 "ready" when the service is
// operating at full fidelity, 503 "draining" once graceful shutdown
// has begun (stop routing here; running cells are finishing), 503
// "degraded" with explicit reasons when it is still serving but
// impaired — the store breaker is open (results are not being
// persisted), corrupt blobs sit in quarantine, or the worker pool is
// saturated with queued work — and 200 "recovering" while jobs
// re-admitted by the journal replay are still re-running (fully
// serving; the counter lets operators watch the backlog clear). Load
// balancers can stop routing to a degraded replica while /v1/healthz
// stays green.
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	js := s.jobs.Stats()
	if js.Draining {
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{Status: "draining"})
		return
	}
	health, hasHealth := s.storeHealth()
	var workers []cluster.MemberStatus
	if s.cluster != nil {
		workers = s.cluster.Members()
	}
	reasons := degradedReasons(s.engine.Stats(), js, health, hasHealth, workers)
	if len(reasons) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{Status: "degraded", Reasons: reasons})
		return
	}
	if js.Recovering > 0 {
		writeJSON(w, http.StatusOK, readyzResponse{Status: "recovering", Recovering: js.Recovering})
		return
	}
	writeJSON(w, http.StatusOK, readyzResponse{Status: "ready"})
}

// statsResponse is the GET /v1/stats reply.
type statsResponse struct {
	// UptimeSeconds is time since process start.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts HTTP requests served (all endpoints).
	Requests int64 `json:"requests"`
	// StoreHits/StoreMisses/StoreCells describe the result store.
	StoreHits   int64 `json:"store_hits"`
	StoreMisses int64 `json:"store_misses"`
	StoreCells  int   `json:"store_cells"`
	// Simulated counts cells actually simulated since start.
	Simulated int64 `json:"simulated"`
	// Deduped counts cells that piggybacked on a concurrent identical
	// in-flight simulation.
	Deduped int64 `json:"deduped"`
	// Inflight is the number of simulations running right now.
	Inflight int `json:"inflight"`
	// Batched counts cells executed through the engine's shared-stream
	// batch path (all designs of a workload off one generated stream).
	Batched int64 `json:"batched"`
	// StreamsShared counts trace-stream generations avoided by
	// batching (K-1 per batch of K cells).
	StreamsShared int64 `json:"streams_shared"`
	// SampledCells counts cells simulated in sampled mode (interval
	// sampling with functional warming) rather than exactly.
	SampledCells int64 `json:"sampled_cells"`
	// CellsPanicked counts simulation panics the engine recovered into
	// per-cell errors.
	CellsPanicked int64 `json:"cells_panicked"`
	// CellsTimedOut counts cells the watchdog abandoned with a timeout
	// error (-cell-timeout).
	CellsTimedOut int64 `json:"cells_timed_out"`
	// StoreErrors counts disk-store IO failures (after retries).
	StoreErrors int64 `json:"store_errors"`
	// StoreQuarantined counts corrupt blobs moved aside into the
	// store's quarantine directory.
	StoreQuarantined int64 `json:"store_quarantined"`
	// StoreBreakerState is the store circuit breaker's state: "closed",
	// "open", or "half-open" (empty for stores without a breaker).
	StoreBreakerState string `json:"store_breaker_state,omitempty"`
	// StoreBreakerTrips counts closed-to-open breaker transitions.
	StoreBreakerTrips int64 `json:"store_breaker_trips"`
	// StoreMemOnlyOps counts lookups/stores served memory-only while
	// the breaker held the disk tier out of the path.
	StoreMemOnlyOps int64 `json:"store_mem_only_ops"`
	// QueueDepth is the number of job cells waiting to run.
	QueueDepth int `json:"queue_depth"`
	// JobsAdmitted/JobsRejected/JobsCancelled count async job
	// submissions by admission outcome and cancellations that took
	// effect.
	JobsAdmitted  int64 `json:"jobs_admitted"`
	JobsRejected  int64 `json:"jobs_rejected"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	// JobCellsRetried counts transiently-failed job cells re-enqueued
	// by the retry policy (-job-retries).
	JobCellsRetried int64 `json:"job_cells_retried"`
	// JobLatencyP50/P90/P99 are submit-to-finish latency percentiles
	// in seconds over recently completed jobs.
	JobLatencyP50 float64 `json:"job_latency_p50_seconds"`
	JobLatencyP90 float64 `json:"job_latency_p90_seconds"`
	JobLatencyP99 float64 `json:"job_latency_p99_seconds"`
	// Draining reports that graceful shutdown has begun; JobsRecovering
	// counts recovered jobs still working toward a terminal state.
	Draining       bool `json:"draining,omitempty"`
	JobsRecovering int  `json:"jobs_recovering,omitempty"`
	// Journal describes the write-ahead job journal (-state-dir only).
	Journal *journalStatsResponse `json:"journal,omitempty"`
	// Recovery reports what the journal replay at startup reconstructed
	// (-state-dir only).
	Recovery *recoveryStatsResponse `json:"recovery,omitempty"`
	// RemoteStoreErrors counts failed operations against the remote
	// blob store (transport errors and bad statuses), when the store's
	// persistent tier is a remote peer (-store-url).
	RemoteStoreErrors int64 `json:"remote_store_errors,omitempty"`
	// Cluster carries the coordinator's routing and worker-health
	// counters; absent when this process is not coordinating.
	Cluster *clusterStatsResponse `json:"cluster,omitempty"`
}

// journalStatsResponse is the "journal" block of GET /v1/stats: the
// write-ahead job journal's footprint and write-failure count.
type journalStatsResponse struct {
	// Records and Bytes describe the journal's current contents.
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
	// Compactions counts snapshot rewrites since the process started.
	Compactions int64 `json:"compactions"`
	// Errors counts journal writes that failed; the affected cells
	// re-run on the next recovery.
	Errors int64 `json:"errors"`
}

// recoveryStatsResponse is the "recovery" block of GET /v1/stats: what
// the journal replay at startup reconstructed.
type recoveryStatsResponse struct {
	// JobsRecovered and JobsTerminal count replayed jobs re-admitted
	// into the queue versus reconstructed already-terminal.
	JobsRecovered int `json:"jobs_recovered"`
	JobsTerminal  int `json:"jobs_terminal"`
	// CellsRestored counts completed cells resolved from the result
	// store without re-simulation; CellsRequeued, cells re-enqueued for
	// execution.
	CellsRestored int `json:"cells_restored"`
	CellsRequeued int `json:"cells_requeued"`
	// TornTailRecords and TornTailBytes report the partial append
	// discarded from the journal at open (the record in flight when the
	// previous process died).
	TornTailRecords int   `json:"torn_tail_records"`
	TornTailBytes   int64 `json:"torn_tail_bytes"`
}

// clusterStatsResponse is the "cluster" block of GET /v1/stats.
type clusterStatsResponse struct {
	// WorkersUp/WorkersSuspect/WorkersDown count workers by health
	// state.
	WorkersUp      int `json:"workers_up"`
	WorkersSuspect int `json:"workers_suspect"`
	WorkersDown    int `json:"workers_down"`
	// BatchesRouted counts batches executed on a worker;
	// BatchesRerouted, attempts re-routed after a transport failure;
	// BatchesHedged, speculative duplicates sent to stragglers'
	// backups; FallbackCells, cells degraded to in-process execution;
	// DispatchErrors, transport-level dispatch failures.
	BatchesRouted   int64 `json:"batches_routed"`
	BatchesRerouted int64 `json:"batches_rerouted"`
	BatchesHedged   int64 `json:"batches_hedged"`
	FallbackCells   int64 `json:"fallback_cells"`
	DispatchErrors  int64 `json:"dispatch_errors"`
}

// handleStats serves GET /v1/stats.
func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	es := s.engine.Stats()
	js := s.jobs.Stats()
	health, _ := s.storeHealth()
	var cl *clusterStatsResponse
	if s.cluster != nil {
		st := s.cluster.Stats()
		cl = &clusterStatsResponse{
			WorkersUp:       st.WorkersUp,
			WorkersSuspect:  st.WorkersSuspect,
			WorkersDown:     st.WorkersDown,
			BatchesRouted:   st.BatchesRouted,
			BatchesRerouted: st.BatchesRerouted,
			BatchesHedged:   st.BatchesHedged,
			FallbackCells:   st.CellsFallback,
			DispatchErrors:  st.DispatchErrors,
		}
	}
	var remoteErrs int64
	if s.remoteErrs != nil {
		remoteErrs = s.remoteErrs()
	}
	var journal *journalStatsResponse
	var recovery *recoveryStatsResponse
	if jst, ok := s.jobs.JournalStats(); ok {
		journal = &journalStatsResponse{
			Records:     jst.Records,
			Bytes:       jst.Bytes,
			Compactions: jst.Compactions,
			Errors:      js.JournalErrors,
		}
		rec := s.jobs.Recovery()
		recovery = &recoveryStatsResponse{
			JobsRecovered:   rec.JobsRecovered,
			JobsTerminal:    rec.JobsTerminal,
			CellsRestored:   rec.CellsRestored,
			CellsRequeued:   rec.CellsRequeued,
			TornTailRecords: rec.TailRecords,
			TornTailBytes:   rec.TailBytes,
		}
	}
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds:     time.Since(s.started).Seconds(),
		Requests:          s.requests.Load(),
		StoreHits:         es.StoreHits,
		StoreMisses:       es.StoreMisses,
		StoreCells:        es.StoreCells,
		Simulated:         es.Simulated,
		Deduped:           es.Deduped,
		Inflight:          es.Inflight,
		Batched:           es.Batched,
		StreamsShared:     es.StreamsShared,
		SampledCells:      es.SampledCells,
		CellsPanicked:     es.Panicked,
		CellsTimedOut:     es.TimedOut,
		StoreErrors:       health.Errors,
		StoreQuarantined:  health.Quarantined,
		StoreBreakerState: health.BreakerState,
		StoreBreakerTrips: health.BreakerTrips,
		StoreMemOnlyOps:   health.MemOnlyOps,
		QueueDepth:        js.QueueDepth,
		JobsAdmitted:      js.Admitted,
		JobsRejected:      js.Rejected,
		JobsCancelled:     js.Cancelled,
		JobCellsRetried:   js.Retried,
		JobLatencyP50:     js.LatencyP50,
		JobLatencyP90:     js.LatencyP90,
		JobLatencyP99:     js.LatencyP99,
		Draining:          js.Draining,
		JobsRecovering:    js.Recovering,
		Journal:           journal,
		Recovery:          recovery,
		RemoteStoreErrors: remoteErrs,
		Cluster:           cl,
	})
}

// handleMetrics serves GET /v1/metrics in Prometheus text exposition
// format (version 0.0.4): the job-queue and admission counters, the
// job-latency summary, and the engine/store counters /v1/stats exposes
// as JSON.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	es := s.engine.Stats()
	js := s.jobs.Stats()
	var b strings.Builder
	metric := func(name, typ, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}
	metric("shiftd_uptime_seconds", "gauge", "Seconds since process start.", time.Since(s.started).Seconds())
	metric("shiftd_requests_total", "counter", "HTTP requests served (all endpoints).", float64(s.requests.Load()))
	metric("shiftd_jobs_queue_depth", "gauge", "Job cells waiting to run.", float64(js.QueueDepth))
	metric("shiftd_jobs_admitted_total", "counter", "Jobs accepted into the queue.", float64(js.Admitted))
	metric("shiftd_jobs_rejected_total", "counter", "Job submissions refused by admission control or the queue bound.", float64(js.Rejected))
	metric("shiftd_jobs_cancelled_total", "counter", "Jobs whose cancellation took effect.", float64(js.Cancelled))
	fmt.Fprintf(&b, "# HELP shiftd_job_latency_seconds Job submit-to-finish latency.\n# TYPE shiftd_job_latency_seconds summary\n")
	fmt.Fprintf(&b, "shiftd_job_latency_seconds{quantile=\"0.5\"} %g\n", js.LatencyP50)
	fmt.Fprintf(&b, "shiftd_job_latency_seconds{quantile=\"0.9\"} %g\n", js.LatencyP90)
	fmt.Fprintf(&b, "shiftd_job_latency_seconds{quantile=\"0.99\"} %g\n", js.LatencyP99)
	fmt.Fprintf(&b, "shiftd_job_latency_seconds_sum %g\n", js.LatencySum)
	fmt.Fprintf(&b, "shiftd_job_latency_seconds_count %d\n", js.LatencyCount)
	metric("shiftd_store_hits_total", "counter", "Result-store lookup hits.", float64(es.StoreHits))
	metric("shiftd_store_misses_total", "counter", "Result-store lookup misses.", float64(es.StoreMisses))
	metric("shiftd_store_cells", "gauge", "Results currently stored.", float64(es.StoreCells))
	metric("shiftd_cells_simulated_total", "counter", "Cells actually simulated.", float64(es.Simulated))
	metric("shiftd_cells_deduped_total", "counter", "Cells served by a concurrent in-flight simulation.", float64(es.Deduped))
	metric("shiftd_cells_inflight", "gauge", "Simulations running right now.", float64(es.Inflight))
	metric("shiftd_cells_batched_total", "counter", "Cells executed through the shared-stream batch path.", float64(es.Batched))
	metric("shiftd_streams_shared_total", "counter", "Trace-stream generations avoided by batching.", float64(es.StreamsShared))
	metric("shiftd_cells_sampled_total", "counter", "Cells simulated in sampled mode.", float64(es.SampledCells))
	metric("shiftd_cells_panicked_total", "counter", "Simulation panics recovered into per-cell errors.", float64(es.Panicked))
	metric("shiftd_cells_timed_out_total", "counter", "Cells abandoned by the watchdog with a timeout error.", float64(es.TimedOut))
	metric("shiftd_job_cells_retried_total", "counter", "Transiently-failed job cells re-enqueued by the retry policy.", float64(js.Retried))
	metric("shiftd_draining", "gauge", "1 while graceful shutdown is draining running cells, 0 otherwise.", boolGauge(js.Draining))
	metric("shiftd_jobs_recovering", "gauge", "Recovered jobs still working toward a terminal state.", float64(js.Recovering))
	if jst, ok := s.jobs.JournalStats(); ok {
		rec := s.jobs.Recovery()
		metric("shiftd_journal_records", "gauge", "Records currently in the write-ahead job journal.", float64(jst.Records))
		metric("shiftd_journal_bytes", "gauge", "Size of the write-ahead job journal in bytes.", float64(jst.Bytes))
		metric("shiftd_journal_compactions_total", "counter", "Journal snapshot rewrites since process start.", float64(jst.Compactions))
		metric("shiftd_journal_errors_total", "counter", "Journal writes that failed (affected cells re-run on recovery).", float64(js.JournalErrors))
		metric("shiftd_recovery_jobs_recovered", "gauge", "Incomplete jobs re-admitted by the journal replay at startup.", float64(rec.JobsRecovered))
		metric("shiftd_recovery_jobs_terminal", "gauge", "Jobs replayed directly to a terminal state at startup.", float64(rec.JobsTerminal))
		metric("shiftd_recovery_cells_restored", "gauge", "Journaled completed cells restored from the result store without re-simulation.", float64(rec.CellsRestored))
		metric("shiftd_recovery_cells_requeued", "gauge", "Cells re-enqueued for execution by the journal replay.", float64(rec.CellsRequeued))
		metric("shiftd_recovery_torn_tail_records", "gauge", "Torn journal records discarded at startup.", float64(rec.TailRecords))
	}
	if health, ok := s.storeHealth(); ok {
		metric("shift_store_errors_total", "counter", "Disk-store IO failures after retries.", float64(health.Errors))
		metric("shiftd_store_quarantined", "gauge", "Corrupt blobs moved into the quarantine directory.", float64(health.Quarantined))
		metric("shiftd_store_breaker_open", "gauge", "1 while the store circuit breaker is open, 0 otherwise.",
			boolGauge(health.BreakerState == store.BreakerOpen))
		metric("shiftd_store_breaker_trips_total", "counter", "Closed-to-open store breaker transitions.", float64(health.BreakerTrips))
		metric("shiftd_store_mem_only_total", "counter", "Store operations served memory-only while the breaker was open.", float64(health.MemOnlyOps))
	}
	if s.remoteErrs != nil {
		metric("shiftd_remote_store_errors_total", "counter", "Failed operations against the remote blob store.", float64(s.remoteErrs()))
	}
	if s.cluster != nil {
		st := s.cluster.Stats()
		metric("shiftd_cluster_workers_up", "gauge", "Cluster workers in the up state.", float64(st.WorkersUp))
		metric("shiftd_cluster_workers_suspect", "gauge", "Cluster workers in the suspect state.", float64(st.WorkersSuspect))
		metric("shiftd_cluster_workers_down", "gauge", "Cluster workers in the down state.", float64(st.WorkersDown))
		metric("shiftd_cluster_batches_routed_total", "counter", "Batches executed on a cluster worker.", float64(st.BatchesRouted))
		metric("shiftd_cluster_batches_rerouted_total", "counter", "Batch attempts re-routed after a worker failure.", float64(st.BatchesRerouted))
		metric("shiftd_cluster_batches_hedged_total", "counter", "Speculative duplicate dispatches to stragglers' backups.", float64(st.BatchesHedged))
		metric("shiftd_cluster_fallback_cells_total", "counter", "Cells degraded to in-process execution.", float64(st.CellsFallback))
		metric("shiftd_cluster_dispatch_errors_total", "counter", "Transport-level batch dispatch failures.", float64(st.DispatchErrors))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}

// boolGauge renders a condition as a 0/1 Prometheus gauge value.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// await runs fn on its own goroutine and waits for its result or for
// the request context to end, whichever comes first. An abandoned
// request stops occupying its handler immediately, but the simulation
// is not cancelled: it runs to completion on the engine and seeds the
// store, so a retry of the same request hits instead of recomputing.
func await[T any](ctx context.Context, fn func() (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := fn()
		ch <- outcome{v, err}
	}()
	select {
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	case o := <-ch:
		return o.v, o.err
	}
}

// writeRunError maps a simulation failure to a response: a request
// that ran out of deadline gets 504, a client disconnect gets 503
// (nobody is reading anyway, but the status keeps logs honest), and
// everything else is a 500 with the engine's error. In both timeout
// and disconnect cases the simulation continues and seeds the store.
func writeRunError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(r.Context().Err(), context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, errors.New("request deadline exceeded; simulation continues and will be served from the store"))
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(r.Context().Err(), context.Canceled) {
		writeError(w, http.StatusServiceUnavailable, errors.New("request abandoned; simulation continues and will be served from the store"))
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// writeJSON writes v as a JSON response. Encoding failures after the
// header is committed cannot change the status, but they are logged
// rather than dropped.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("shiftd: encoding %d response: %v", code, err)
	}
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
