package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"shift"
)

// server wires the HTTP API to one shared engine and result store. All
// endpoints funnel their cells into the same engine, so concurrent
// requests — whether single cells, grids, or whole figures — share
// simulations through the engine's in-flight deduplication and the
// store.
type server struct {
	engine   *shift.Engine
	store    shift.ResultStore
	base     shift.Options
	started  time.Time
	requests atomic.Int64
}

// newServer builds a server around a shared engine, its store, and the
// base options that requests override per-field.
func newServer(engine *shift.Engine, rs shift.ResultStore, base shift.Options) *server {
	return &server{engine: engine, store: rs, base: base, started: time.Now()}
}

// handler routes the /v1 API. Method matching is handled by the
// ServeMux patterns (a POST to a GET route answers 405).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/grid", s.handleGrid)
	mux.HandleFunc("GET /v1/figures/{name}", s.handleFigure)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// cellSpec is the wire form of one simulation cell. Zero-valued fields
// inherit the server's base options (scale, seed, core count), so the
// minimal request is just {"workload": ..., "design": ...}.
type cellSpec struct {
	// Label optionally names the cell in grid responses and error
	// messages; it has no effect on execution.
	Label string `json:"label,omitempty"`
	// Workload is a Table I workload name (required; see shift.Workloads).
	Workload string `json:"workload"`
	// Design is a figure-legend design name: "Baseline", "NextLine",
	// "PIF_2K", "PIF_32K", "ZeroLat-SHIFT", "SHIFT", "TIFS" (required).
	Design string `json:"design"`
	// CoreType is "Fat-OoO", "Lean-OoO", or "Lean-IO" (default: the
	// server's base core type).
	CoreType string `json:"core_type,omitempty"`
	// Cores is the CMP size, 1-16 (default: base).
	Cores int `json:"cores,omitempty"`
	// HistEntries overrides the history capacity (0 = design default).
	HistEntries int `json:"hist_entries,omitempty"`
	// PredictionOnly and CommonalityMode select the trace-based
	// methodologies of Sections 5.2 and 3.
	PredictionOnly  bool `json:"prediction_only,omitempty"`
	CommonalityMode bool `json:"commonality_mode,omitempty"`
	// ElimProb is the Figure 1 miss-elimination probability.
	ElimProb float64 `json:"elim_prob,omitempty"`
	// WarmupRecords/MeasureRecords override the window lengths
	// (default: base).
	WarmupRecords  int64 `json:"warmup_records,omitempty"`
	MeasureRecords int64 `json:"measure_records,omitempty"`
	// Seed overrides the simulator seed (default: base).
	Seed *int64 `json:"seed,omitempty"`
	// SamplePeriod enables interval sampling with functional warming:
	// one interval of every SamplePeriod is simulated in detail and the
	// rest are fast-forwarded; the result carries standard-error and
	// confidence-interval fields and is an approximation, keyed
	// separately from exact results. 0 or 1 (the default) is exact
	// simulation.
	SamplePeriod int64 `json:"sample_period,omitempty"`
	// SampleInterval is the measured interval length in records per
	// core (0 = default 500).
	SampleInterval int64 `json:"sample_interval,omitempty"`
	// SampleWarmup is the fraction of each interval re-simulated in
	// detail before measuring (0 = default 0.25).
	SampleWarmup float64 `json:"sample_warmup,omitempty"`
	// SampleConfidence is the confidence level of the reported bounds:
	// 0.90, 0.95 (default on 0), or 0.99.
	SampleConfidence float64 `json:"sample_confidence,omitempty"`
}

// config resolves the wire cell against the server's base options.
func (c cellSpec) config(base shift.Options) (shift.Config, error) {
	if c.Workload == "" {
		return shift.Config{}, errors.New("missing \"workload\"")
	}
	if c.Design == "" {
		return shift.Config{}, errors.New("missing \"design\"")
	}
	d, err := shift.ParseDesign(c.Design)
	if err != nil {
		return shift.Config{}, err
	}
	ct := base.CoreType
	if c.CoreType != "" {
		if ct, err = shift.ParseCoreType(c.CoreType); err != nil {
			return shift.Config{}, err
		}
	}
	cfg := shift.Config{
		Workload:        c.Workload,
		Design:          d,
		CoreType:        ct,
		Cores:           base.Cores,
		HistEntries:     c.HistEntries,
		PredictionOnly:  c.PredictionOnly,
		CommonalityMode: c.CommonalityMode,
		ElimProb:        c.ElimProb,
		WarmupRecords:   base.WarmupRecords,
		MeasureRecords:  base.MeasureRecords,
		Seed:            base.Seed,
	}
	if c.Cores != 0 {
		cfg.Cores = c.Cores
	}
	if c.WarmupRecords != 0 {
		cfg.WarmupRecords = c.WarmupRecords
	}
	if c.MeasureRecords != 0 {
		cfg.MeasureRecords = c.MeasureRecords
	}
	if c.Seed != nil {
		cfg.Seed = *c.Seed
	}
	cfg.Sampling = shift.Sampling{
		Period:          c.SamplePeriod,
		IntervalRecords: c.SampleInterval,
		WarmupFraction:  c.SampleWarmup,
		Confidence:      c.SampleConfidence,
	}
	return cfg, nil
}

// runResponse is the POST /v1/run reply.
type runResponse struct {
	// Key is the cell's content address (shift.Config.Key): the same
	// key always denotes the same bit-identical result.
	Key string `json:"key"`
	// Result is the simulation result (field names as in
	// shift.RunResult).
	Result shift.RunResult `json:"result"`
}

// handleRun serves POST /v1/run: one cell in, one result out.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var spec cellSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	cfg, err := spec.config(s.base)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := await(r.Context(), func() (shift.RunResult, error) {
		return s.engine.RunOne(cfg)
	})
	if err != nil {
		writeRunError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, runResponse{Key: cfg.Key(), Result: res})
}

// gridRequest is the POST /v1/grid body.
type gridRequest struct {
	// Cells is the experiment grid; duplicates are simulated once.
	Cells []cellSpec `json:"cells"`
}

// gridResponse is the POST /v1/grid reply: one entry per requested
// cell, in request order (the engine's deterministic cell-keyed
// merge — never completion order).
type gridResponse struct {
	Results []gridCellResult `json:"results"`
}

// gridCellResult pairs one requested cell with its result.
type gridCellResult struct {
	Label  string          `json:"label,omitempty"`
	Key    string          `json:"key"`
	Result shift.RunResult `json:"result"`
}

// handleGrid serves POST /v1/grid: a cell list in, results in cell
// order out.
func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req gridRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty \"cells\""))
		return
	}
	cells := make([]shift.Cell, len(req.Cells))
	for i, spec := range req.Cells {
		cfg, err := spec.config(s.base)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("cell %d: %w", i, err))
			return
		}
		label := spec.Label
		if label == "" {
			label = fmt.Sprintf("%s/%s", cfg.Workload, cfg.Design)
		}
		cells[i] = shift.Cell{Label: label, Config: cfg}
	}
	results, err := await(r.Context(), func() ([]shift.RunResult, error) {
		return s.engine.RunAll(cells)
	})
	if err != nil {
		writeRunError(w, r, err)
		return
	}
	resp := gridResponse{Results: make([]gridCellResult, len(cells))}
	for i := range cells {
		resp.Results[i] = gridCellResult{
			Label:  cells[i].Label,
			Key:    cells[i].Config.Key(),
			Result: results[i],
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFigure serves GET /v1/figures/{name}: the named experiment
// driver's rendered output as text/plain — byte-identical to `shiftsim
// -experiment {name}` at the same options, since both dispatch through
// shift.RunExperiment. Query parameters quick, workloads (comma-
// separated), cores, seed, warmup, measure, and sample (a sampling
// period; the figure is then regenerated in sampled mode, trading
// exactness for speed) override the server's base options per request.
func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	opts, err := s.optionsFromQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	out, err := await(r.Context(), func() (string, error) {
		return shift.RunExperiment(name, opts)
	})
	if err != nil {
		if errors.Is(err, shift.ErrUnknownExperiment) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeRunError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}

// optionsFromQuery applies per-request query overrides to the base
// options and routes the work through the shared engine.
func (s *server) optionsFromQuery(q url.Values) (shift.Options, error) {
	o := s.base
	if v := q.Get("quick"); v != "" {
		quick, err := strconv.ParseBool(v)
		if err != nil {
			return o, fmt.Errorf("quick: %w", err)
		}
		if quick {
			o = shift.QuickOptions()
		}
	}
	if v := q.Get("workloads"); v != "" {
		o.Workloads = nil
		for _, w := range strings.Split(v, ",") {
			o.Workloads = append(o.Workloads, strings.TrimSpace(w))
		}
	}
	for _, p := range []struct {
		name string
		dst  *int64
	}{
		{"warmup", &o.WarmupRecords},
		{"measure", &o.MeasureRecords},
		{"seed", &o.Seed},
		{"sample", &o.Sampling.Period},
		{"sample_interval", &o.Sampling.IntervalRecords},
	} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return o, fmt.Errorf("%s: %w", p.name, err)
			}
			*p.dst = n
		}
	}
	if v := q.Get("cores"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return o, fmt.Errorf("cores: %w", err)
		}
		o.Cores = n
	}
	// All figure cells run on the shared engine: one store, one
	// in-flight table, across every concurrent request.
	o.Engine = s.engine
	return o, nil
}

// handleHealthz serves GET /v1/healthz.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statsResponse is the GET /v1/stats reply.
type statsResponse struct {
	// UptimeSeconds is time since process start.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts HTTP requests served (all endpoints).
	Requests int64 `json:"requests"`
	// StoreHits/StoreMisses/StoreCells describe the result store.
	StoreHits   int64 `json:"store_hits"`
	StoreMisses int64 `json:"store_misses"`
	StoreCells  int   `json:"store_cells"`
	// Simulated counts cells actually simulated since start.
	Simulated int64 `json:"simulated"`
	// Deduped counts cells that piggybacked on a concurrent identical
	// in-flight simulation.
	Deduped int64 `json:"deduped"`
	// Inflight is the number of simulations running right now.
	Inflight int `json:"inflight"`
	// Batched counts cells executed through the engine's shared-stream
	// batch path (all designs of a workload off one generated stream).
	Batched int64 `json:"batched"`
	// StreamsShared counts trace-stream generations avoided by
	// batching (K-1 per batch of K cells).
	StreamsShared int64 `json:"streams_shared"`
	// SampledCells counts cells simulated in sampled mode (interval
	// sampling with functional warming) rather than exactly.
	SampledCells int64 `json:"sampled_cells"`
}

// handleStats serves GET /v1/stats.
func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	es := s.engine.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.requests.Load(),
		StoreHits:     es.StoreHits,
		StoreMisses:   es.StoreMisses,
		StoreCells:    es.StoreCells,
		Simulated:     es.Simulated,
		Deduped:       es.Deduped,
		Inflight:      es.Inflight,
		Batched:       es.Batched,
		StreamsShared: es.StreamsShared,
		SampledCells:  es.SampledCells,
	})
}

// await runs fn on its own goroutine and waits for its result or for
// the request context to end, whichever comes first. An abandoned
// request stops occupying its handler immediately, but the simulation
// is not cancelled: it runs to completion on the engine and seeds the
// store, so a retry of the same request hits instead of recomputing.
func await[T any](ctx context.Context, fn func() (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := fn()
		ch <- outcome{v, err}
	}()
	select {
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	case o := <-ch:
		return o.v, o.err
	}
}

// writeRunError maps a simulation failure to a response: client
// disconnects get 503 (nobody is reading anyway, but the status keeps
// logs honest), everything else is a 500 with the engine's error.
func writeRunError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(r.Context().Err(), context.Canceled) {
		writeError(w, http.StatusServiceUnavailable, errors.New("request abandoned; simulation continues and will be served from the store"))
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
