package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"shift"
	"shift/internal/jobs"
)

// testOpts is a reduced base scale so endpoint tests stay fast.
func testOpts() shift.Options {
	o := shift.QuickOptions()
	o.Cores = 4
	o.WarmupRecords = 6000
	o.MeasureRecords = 6000
	return o
}

// newTestServer stands up shiftd's handler around a fresh shared
// engine + in-memory store, exactly as main() wires them.
func newTestServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	rs := shift.NewResultCache()
	engine := shift.NewEngine(0, rs)
	jm := jobs.New(jobs.Config{Run: engine.RunOne})
	t.Cleanup(jm.Close)
	srv := newServer(engine, rs, testOpts(), jm, 1<<20)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// postJSON posts v and decodes the response into out, returning the
// status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
}

// TestRunEndpoint checks that POST /v1/run returns exactly what the
// library returns for the equivalent Config.
func TestRunEndpoint(t *testing.T) {
	ts, srv := newTestServer(t)
	var got runResponse
	code := postJSON(t, ts.URL+"/v1/run",
		map[string]any{"workload": "Web Search", "design": "SHIFT"}, &got)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	cfg, err := cellSpec{Workload: "Web Search", Design: "SHIFT"}.config(srv.base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := shift.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != cfg.Key() {
		t.Errorf("key = %s, want %s", got.Key, cfg.Key())
	}
	if !reflect.DeepEqual(got.Result, want) {
		t.Errorf("served result differs from library result:\ngot:  %+v\nwant: %+v", got.Result, want)
	}
}

// TestRunValidation checks the 4xx paths: malformed JSON, missing
// fields, unknown names.
func TestRunValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	for name, body := range map[string]map[string]any{
		"missing workload":       {"design": "SHIFT"},
		"missing design":         {"workload": "Web Search"},
		"unknown design":         {"workload": "Web Search", "design": "MYSTERY"},
		"unknown core":           {"workload": "Web Search", "design": "SHIFT", "core_type": "Huge-OoO"},
		"unknown workload":       {"workload": "No Such Workload", "design": "SHIFT"},
		"cores too high":         {"workload": "Web Search", "design": "SHIFT", "cores": 17},
		"cores negative":         {"workload": "Web Search", "design": "SHIFT", "cores": -1},
		"negative hist":          {"workload": "Web Search", "design": "SHIFT", "hist_entries": -8},
		"elim_prob out of range": {"workload": "Web Search", "design": "SHIFT", "elim_prob": 1.5},
		"negative warmup":        {"workload": "Web Search", "design": "SHIFT", "warmup_records": -1},
		"negative measure":       {"workload": "Web Search", "design": "SHIFT", "measure_records": -1},
		"negative sample":        {"workload": "Web Search", "design": "SHIFT", "sample_period": -4},
		"negative interval":      {"workload": "Web Search", "design": "SHIFT", "sample_interval": -1},
		"warm fraction >= 1":     {"workload": "Web Search", "design": "SHIFT", "sample_period": 3, "sample_warmup": 1.0},
		"bad confidence":         {"workload": "Web Search", "design": "SHIFT", "sample_period": 3, "sample_confidence": 0.5},
		"window too small":       {"workload": "Web Search", "design": "SHIFT", "sample_period": 3, "measure_records": 2000},
	} {
		if code := postJSON(t, ts.URL+"/v1/run", body, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	// Method matching: GET on a POST route.
	resp, err = http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}
}

// TestGridEndpoint checks POST /v1/grid: results in request order,
// duplicates simulated once, labels echoed.
func TestGridEndpoint(t *testing.T) {
	ts, srv := newTestServer(t)
	var got gridResponse
	code := postJSON(t, ts.URL+"/v1/grid", map[string]any{
		"cells": []map[string]any{
			{"workload": "Web Search", "design": "Baseline", "label": "base"},
			{"workload": "Web Search", "design": "NextLine"},
			{"workload": "Web Search", "design": "Baseline"}, // duplicate of cell 0
		},
	}, &got)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(got.Results) != 3 {
		t.Fatalf("%d results, want 3", len(got.Results))
	}
	if got.Results[0].Label != "base" || got.Results[1].Label != "Web Search/NextLine" {
		t.Errorf("labels = %q, %q", got.Results[0].Label, got.Results[1].Label)
	}
	if got.Results[0].Result.Design != "Baseline" || got.Results[1].Result.Design != "NextLine" {
		t.Errorf("results out of cell order: %s, %s", got.Results[0].Result.Design, got.Results[1].Result.Design)
	}
	if !reflect.DeepEqual(got.Results[0].Result, got.Results[2].Result) || got.Results[0].Key != got.Results[2].Key {
		t.Error("duplicate cells returned different results")
	}
	if st := srv.engine.Stats(); st.Simulated != 2 {
		t.Errorf("simulated %d cells, want 2 (duplicate deduped within the grid)", st.Simulated)
	}
	if code := postJSON(t, ts.URL+"/v1/grid", map[string]any{"cells": []any{}}, nil); code != http.StatusBadRequest {
		t.Errorf("empty grid: status %d, want 400", code)
	}
}

// TestFigureEndpoint checks that GET /v1/figures/{name} serves output
// byte-identical to the library's (and therefore cmd/shiftsim's)
// rendering, that bare figure numbers resolve, and that unknown names
// 404.
func TestFigureEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	const query = "?workloads=Web%20Search"
	body := getBody(t, ts.URL+"/v1/figures/fig9"+query, http.StatusOK)

	opts := testOpts()
	opts.Workloads = []string{"Web Search"}
	want, err := shift.RunExperiment("fig9", opts)
	if err != nil {
		t.Fatal(err)
	}
	if body != want {
		t.Errorf("served figure differs from library rendering:\n--- served ---\n%s\n--- library ---\n%s", body, want)
	}
	if byNumber := getBody(t, ts.URL+"/v1/figures/9"+query, http.StatusOK); byNumber != want {
		t.Error("bare figure number served different output")
	}
	getBody(t, ts.URL+"/v1/figures/fig99", http.StatusNotFound)
	// A bad query parameter is a 400, not a simulation.
	getBody(t, ts.URL+"/v1/figures/fig9?cores=many", http.StatusBadRequest)
}

// TestFigureEndpointMatchesShiftsimGolden locks the cross-binary
// acceptance property: the service's figure output is byte-identical
// to cmd/shiftsim's committed golden output for the same options.
func TestFigureEndpointMatchesShiftsimGolden(t *testing.T) {
	want, err := os.ReadFile("../shiftsim/testdata/fig9.golden")
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t)
	// Query-encode cmd/shiftsim's goldenOpts (quick scale, one
	// workload, 4 cores, 6000-record windows, seed 1).
	body := getBody(t, ts.URL+
		"/v1/figures/9?quick=1&workloads=Web%20Search&cores=4&warmup=6000&measure=6000&seed=1",
		http.StatusOK)
	if body != string(want) {
		t.Errorf("served figure drifted from cmd/shiftsim golden output:\n--- served ---\n%s\n--- golden ---\n%s", body, want)
	}
}

// getBody fetches url, asserts the status, and returns the body.
func getBody(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d (body: %s)", url, resp.StatusCode, wantStatus, body)
	}
	return string(body)
}

// TestConcurrentRunsSingleFlight is the service-level deduplication
// gate: N concurrent identical POST /v1/run requests must produce
// byte-identical responses from exactly one simulation — the rest
// share the in-flight computation or hit the store.
func TestConcurrentRunsSingleFlight(t *testing.T) {
	ts, srv := newTestServer(t)
	const n = 8
	req := map[string]any{"workload": "OLTP Oracle", "design": "SHIFT"}
	bodies := make([]string, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			payload, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(payload))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d, err %v", i, resp.StatusCode, err)
				return
			}
			bodies[i] = string(b)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	// Dedup is best-effort (see TestEngineSingleFlight in the root
	// package): assert the accounting identity and that sharing
	// happened, not an exact count that would flake on loaded runners.
	st := srv.engine.Stats()
	if st.Simulated+st.Deduped+st.StoreHits != n {
		t.Errorf("accounting: simulated=%d + deduped=%d + storeHits=%d != %d requests",
			st.Simulated, st.Deduped, st.StoreHits, n)
	}
	if st.Simulated < 1 || st.Simulated >= n {
		t.Errorf("simulated %d cells for %d concurrent identical requests, want 1 <= simulated < %d", st.Simulated, n, n)
	}

	// The follow-up request is a pure store hit: no new simulation.
	simulatedBefore := st.Simulated
	var again runResponse
	if code := postJSON(t, ts.URL+"/v1/run", req, &again); code != http.StatusOK {
		t.Fatalf("follow-up status %d", code)
	}
	if st := srv.engine.Stats(); st.Simulated != simulatedBefore {
		t.Errorf("follow-up request re-simulated (%d -> %d)", simulatedBefore, st.Simulated)
	}

	// /v1/stats reflects all of the above.
	var stats statsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Simulated != simulatedBefore || stats.StoreCells != 1 || stats.Inflight != 0 {
		t.Errorf("stats = %+v, want simulated=%d store_cells=1 inflight=0", stats, simulatedBefore)
	}
	if stats.Requests < n+1 {
		t.Errorf("requests = %d, want >= %d", stats.Requests, n+1)
	}
}

// TestFiguresShareTheStore checks that cells paid for by one endpoint
// are reused by another: a figure request after a grid covering its
// cells simulates only what is missing.
func TestFiguresShareTheStore(t *testing.T) {
	ts, srv := newTestServer(t)
	var first runResponse
	if code := postJSON(t, ts.URL+"/v1/run",
		map[string]any{"workload": "Web Search", "design": "Baseline"}, &first); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	before := srv.engine.Stats()
	// Figure 9 over the same single workload re-runs the same baseline
	// cell; it must come from the store.
	getBody(t, ts.URL+"/v1/figures/9?workloads=Web%20Search", http.StatusOK)
	after := srv.engine.Stats()
	if after.StoreHits <= before.StoreHits {
		t.Errorf("figure request did not reuse stored cells (hits %d -> %d)", before.StoreHits, after.StoreHits)
	}
}

// TestStatsEndpointShape pins the stats JSON field names — they are
// API.
func TestStatsEndpointShape(t *testing.T) {
	ts, _ := newTestServer(t)
	body := getBody(t, ts.URL+"/v1/stats", http.StatusOK)
	for _, field := range []string{
		"uptime_seconds", "requests", "store_hits", "store_misses",
		"store_cells", "simulated", "deduped", "inflight",
		"queue_depth", "jobs_admitted", "jobs_rejected", "jobs_cancelled",
		"job_latency_p50_seconds", "job_latency_p90_seconds", "job_latency_p99_seconds",
	} {
		if !strings.Contains(body, fmt.Sprintf("%q", field)) {
			t.Errorf("stats body missing field %q:\n%s", field, body)
		}
	}
}

// TestRunEndpointSampled: a cell with sample_period runs in sampled
// mode, returns the error-bound fields, keys separately from its exact
// twin, and bumps the engine's sampled-cell counter.
func TestRunEndpointSampled(t *testing.T) {
	ts, srv := newTestServer(t)
	spec := map[string]any{
		"workload": "Web Search", "design": "SHIFT",
		"sample_period": 3, "sample_interval": 500,
	}
	var got runResponse
	if code := postJSON(t, ts.URL+"/v1/run", spec, &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !got.Result.Sampled || got.Result.SampledIntervals != 4 {
		t.Fatalf("sampled metadata wrong: %+v", got.Result)
	}
	if got.Result.ThroughputStdErr <= 0 || got.Result.MPKICI < got.Result.MPKIStdErr {
		t.Fatalf("degenerate error bounds: %+v", got.Result)
	}
	exactCfg, err := cellSpec{Workload: "Web Search", Design: "SHIFT"}.config(srv.base)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key == exactCfg.Key() {
		t.Error("sampled cell shares the exact cell's key")
	}
	// The wire cell resolves to the same config the library would use.
	cfg := exactCfg
	cfg.Sampling = shift.Sampling{Period: 3, IntervalRecords: 500}
	want, err := shift.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result, want) {
		t.Error("served sampled result differs from library result")
	}

	var st statsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.SampledCells != 1 {
		t.Errorf("stats sampled_cells = %d, want 1", st.SampledCells)
	}
}

// TestFigureEndpointSampled: the sample query parameter regenerates a
// figure in sampled mode (different cells, same shape).
func TestFigureEndpointSampled(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/figures/fig7?workloads=Web+Search&sample=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "Figure 7") {
		t.Fatalf("sampled figure = %d %q", resp.StatusCode, body)
	}
	// A malformed policy is a client error, not a simulation failure.
	for _, q := range []string{
		"sample=-4",
		"sample=3&sample_warm=1.5",
		"sample=3&sample_confidence=0.42",
		"sample_interval=-1",
		"workloads=No+Such+Workload",
		"cores=99",
	} {
		getBody(t, ts.URL+"/v1/figures/fig7?"+q, http.StatusBadRequest)
	}
}

// TestFigureEndpointSamplingQueryParity: sample_warm and
// sample_confidence reach the experiment options exactly as the
// library's Sampling fields would — the served figure is
// byte-identical to the library rendering at the same policy.
func TestFigureEndpointSamplingQueryParity(t *testing.T) {
	ts, _ := newTestServer(t)
	body := getBody(t, ts.URL+
		"/v1/figures/fig7?workloads=Web+Search&sample=3&sample_warm=0.5&sample_confidence=0.99",
		http.StatusOK)
	opts := testOpts()
	opts.Workloads = []string{"Web Search"}
	opts.Sampling = shift.Sampling{Period: 3, WarmupFraction: 0.5, Confidence: 0.99}
	want, err := shift.RunExperiment("fig7", opts)
	if err != nil {
		t.Fatal(err)
	}
	if body != want {
		t.Error("served sampled figure differs from library rendering at the same policy")
	}
}
