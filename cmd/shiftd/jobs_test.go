package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"shift"
	"shift/internal/jobs"
)

// submitJob posts a job and returns the decoded 202 response.
func submitJob(t *testing.T, url string, cells []map[string]any) jobSubmitResponse {
	t.Helper()
	code, resp := postJob(t, url, cells, "")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	return resp
}

// postJob posts a job as the given client and returns the status code
// and (when 202) the decoded response.
func postJob(t *testing.T, url string, cells []map[string]any, client string) (int, jobSubmitResponse) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out jobSubmitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

// getJobStatus fetches a job's status document.
func getJobStatus(t *testing.T, url, id string) jobStatusResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status endpoint = %d, want 200", resp.StatusCode)
	}
	var st jobStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// awaitJobState polls until the job reaches the wanted state.
func awaitJobState(t *testing.T, url, id, want string) jobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getJobStatus(t, url, id)
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q, want %q", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobLifecycle covers the async happy path end to end: submit →
// 202 with id and links, poll to done, stream the full replay, and
// confirm the final status carries every result.
func TestJobLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	sub := submitJob(t, ts.URL, []map[string]any{
		{"workload": "Web Search", "design": "Baseline", "label": "base"},
		{"workload": "Web Search", "design": "SHIFT"},
	})
	if sub.ID == "" || sub.State != "queued" || sub.Cells != 2 {
		t.Fatalf("submit response = %+v", sub)
	}
	if sub.StatusURL != "/v1/jobs/"+sub.ID || sub.StreamURL != "/v1/jobs/"+sub.ID+"/stream" {
		t.Fatalf("submit links = %q, %q", sub.StatusURL, sub.StreamURL)
	}

	st := awaitJobState(t, ts.URL, sub.ID, "done")
	if st.Completed != 2 || st.Failed != 0 || st.Dropped != 0 {
		t.Fatalf("final status = %+v, want 2 completed", st)
	}
	if st.Started == nil || st.Finished == nil {
		t.Fatal("final status missing timestamps")
	}
	for i, r := range st.Results {
		if r == nil || r.Key == "" {
			t.Fatalf("result %d missing: %+v", i, r)
		}
	}
	if st.Results[0].Label != "base" || st.Results[1].Label != "Web Search/SHIFT" {
		t.Fatalf("labels = %q, %q", st.Results[0].Label, st.Results[1].Label)
	}

	// The stream of a finished job replays every cell event, then "end".
	resp, err := http.Get(ts.URL + sub.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content-type = %q", ct)
	}
	var events []jobStreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev jobStreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("%d stream events, want 3 (2 cells + end)", len(events))
	}
	seen := map[int]bool{}
	for _, ev := range events[:2] {
		if ev.Type != "cell" || ev.Index == nil || ev.Result == nil || ev.Error != "" {
			t.Fatalf("cell event = %+v", ev)
		}
		seen[*ev.Index] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("cell events cover %v, want both cells", seen)
	}
	if events[2].Type != "end" || events[2].State != "done" {
		t.Fatalf("last event = %+v, want end/done", events[2])
	}
}

// TestJobResultsMatchGrid is the acceptance golden: a drained job's
// "results" array is byte-identical to the synchronous /v1/grid reply
// for the same cells — even though SJF executes them in a different
// order than requested.
func TestJobResultsMatchGrid(t *testing.T) {
	ts, _ := newTestServer(t)
	// Descending cost: the SJF queue runs these in reverse request
	// order, so index-aligned fan-in (not arrival order) is what keeps
	// the arrays identical.
	cells := []map[string]any{
		{"workload": "Web Search", "design": "SHIFT", "measure_records": 6000},
		{"workload": "Web Search", "design": "Baseline", "measure_records": 4000},
		{"workload": "Web Search", "design": "NextLine", "measure_records": 3000, "sample_period": 3},
	}
	body, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/grid", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid status %d", resp.StatusCode)
	}
	var gridDoc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&gridDoc); err != nil {
		t.Fatal(err)
	}

	sub := submitJob(t, ts.URL, cells)
	awaitJobState(t, ts.URL, sub.ID, "done")
	resp2, err := http.Get(ts.URL + sub.StatusURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var jobDoc map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&jobDoc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gridDoc["results"], jobDoc["results"]) {
		t.Errorf("job results are not byte-identical to /v1/grid:\n--- grid ---\n%s\n--- job ---\n%s",
			gridDoc["results"], jobDoc["results"])
	}
}

// newBlockedServer stands up a server whose job runner blocks until
// released, for deterministic queue/cancel tests. The engine still
// serves the synchronous endpoints.
func newBlockedServer(t *testing.T, cfg jobs.Config) (*httptest.Server, chan string, chan struct{}) {
	t.Helper()
	started := make(chan string, 64)
	release := make(chan struct{}, 64)
	cfg.Run = func(c shift.Config) (shift.RunResult, error) {
		started <- c.Workload + "/" + c.Design.String()
		<-release
		return shift.RunResult{Workload: c.Workload, Design: c.Design.String()}, nil
	}
	rs := shift.NewResultCache()
	engine := shift.NewEngine(0, rs)
	jm := jobs.New(cfg)
	t.Cleanup(jm.Close)
	srv := newServer(engine, rs, testOpts(), jm, 1<<20)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, started, release
}

// awaitStarted waits for the blocked runner to pick up a cell.
func awaitStarted(t *testing.T, started chan string) string {
	t.Helper()
	select {
	case s := <-started:
		return s
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a job cell to start")
		return ""
	}
}

// TestJobCancel: DELETE drops queued cells immediately while the
// running cell finishes and publishes its result.
func TestJobCancel(t *testing.T) {
	ts, started, release := newBlockedServer(t, jobs.Config{Workers: 1})
	// Ascending cost: the single worker picks cell 0 first.
	sub := submitJob(t, ts.URL, []map[string]any{
		{"workload": "Web Search", "design": "Baseline", "measure_records": 1000},
		{"workload": "Web Search", "design": "SHIFT", "measure_records": 2000},
		{"workload": "Web Search", "design": "TIFS", "measure_records": 3000},
	})
	if got := awaitStarted(t, started); got != "Web Search/Baseline" {
		t.Fatalf("first started cell = %q", got)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+sub.StatusURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	var st jobStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.CancelRequested || st.Dropped != 2 || st.State != "running" {
		t.Fatalf("post-cancel status = %+v, want running with 2 dropped", st)
	}

	release <- struct{}{}
	final := awaitJobState(t, ts.URL, sub.ID, "cancelled")
	if final.Completed != 1 || final.Results[0] == nil || final.Results[1] != nil || final.Results[2] != nil {
		t.Fatalf("final status = %+v, want only cell 0 completed", final)
	}
	if final.CancelRequested {
		t.Error("terminal status still advertises cancel_requested")
	}
}

// TestJobStreamLive: a stream opened while the job runs delivers each
// cell event as it lands and terminates with the end event.
func TestJobStreamLive(t *testing.T) {
	ts, started, release := newBlockedServer(t, jobs.Config{Workers: 1})
	sub := submitJob(t, ts.URL, []map[string]any{
		{"workload": "Web Search", "design": "Baseline"},
	})
	awaitStarted(t, started)

	resp, err := http.Get(ts.URL + sub.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	release <- struct{}{}
	var events []jobStreamEvent
	for sc.Scan() {
		var ev jobStreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 || events[0].Type != "cell" || events[1].Type != "end" || events[1].State != "done" {
		t.Fatalf("live stream events = %+v, want one cell then end/done", events)
	}
}

// TestJobAdmission429: a client that drains its token bucket gets 429
// with a Retry-After header; other clients are unaffected; a job larger
// than the burst capacity is rejected outright with 400.
func TestJobAdmission429(t *testing.T) {
	rs := shift.NewResultCache()
	engine := shift.NewEngine(0, rs)
	jm := jobs.New(jobs.Config{Rate: 1, Burst: 2, Run: engine.RunOne})
	t.Cleanup(jm.Close)
	srv := newServer(engine, rs, testOpts(), jm, 1<<20)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	cells := []map[string]any{
		{"workload": "Web Search", "design": "Baseline"},
		{"workload": "Web Search", "design": "NextLine"},
	}
	if code, _ := postJob(t, ts.URL, cells, "alice"); code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202 (bucket starts full)", code)
	}
	body, _ := json.Marshal(map[string]any{"cells": cells})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client-ID", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained submit = %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", resp.Header.Get("Retry-After"))
	}
	// Admission is per client: bob's bucket is untouched.
	if code, _ := postJob(t, ts.URL, cells, "bob"); code != http.StatusAccepted {
		t.Fatalf("other client = %d, want 202", code)
	}
	// A 3-cell job can never fit a burst of 2: reject now, not later.
	big := append(cells, map[string]any{"workload": "Web Search", "design": "SHIFT"})
	if code, _ := postJob(t, ts.URL, big, "carol"); code != http.StatusBadRequest {
		t.Fatalf("over-burst job = %d, want 400", code)
	}

	var stats statsResponse
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.JobsAdmitted != 2 || stats.JobsRejected != 2 {
		t.Fatalf("stats = %+v, want 2 admitted, 2 rejected", stats)
	}
}

// TestJobQueueFull503: submissions past the queued-cell bound answer
// 503 with Retry-After.
func TestJobQueueFull503(t *testing.T) {
	ts, started, release := newBlockedServer(t, jobs.Config{Workers: 1, MaxQueue: 1, Burst: 64})
	one := []map[string]any{{"workload": "Web Search", "design": "Baseline"}}
	if code, _ := postJob(t, ts.URL, one, ""); code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	awaitStarted(t, started) // the cell left the queue and occupies the worker
	if code, _ := postJob(t, ts.URL, one, ""); code != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202 (fills the queue)", code)
	}
	body, _ := json.Marshal(map[string]any{"cells": one})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("overflow submit = %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	release <- struct{}{}
	release <- struct{}{}
}

// TestJobNotFound: status, stream, and cancel of an unknown id 404.
func TestJobNotFound(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/v1/jobs/j-999999", "/v1/jobs/j-999999/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j-999999", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job = %d, want 404", resp.StatusCode)
	}
	// Bad submissions: empty cell list and invalid cells are 400s.
	if code, _ := postJob(t, ts.URL, nil, ""); code != http.StatusBadRequest {
		t.Errorf("empty job = %d, want 400", code)
	}
	bad := []map[string]any{{"workload": "No Such Workload", "design": "SHIFT"}}
	if code, _ := postJob(t, ts.URL, bad, ""); code != http.StatusBadRequest {
		t.Errorf("invalid cell = %d, want 400", code)
	}
}

// metricLine matches one Prometheus sample line: name, optional
// labels, a space, and a number.
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$`)

// TestMetricsEndpoint: /v1/metrics serves parseable Prometheus text
// exposition covering the queue, admission, latency, and engine
// counters.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// Generate some traffic so the counters are nonzero.
	sub := submitJob(t, ts.URL, []map[string]any{{"workload": "Web Search", "design": "Baseline"}})
	awaitJobState(t, ts.URL, sub.ID, "done")

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content-type = %q, want Prometheus text 0.0.4", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var body strings.Builder
	types := map[string]bool{}
	for sc.Scan() {
		line := sc.Text()
		body.WriteString(line + "\n")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			types[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Errorf("unparseable metric line %q", line)
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !types[name] && !types[base] {
			t.Errorf("sample %q has no preceding TYPE declaration", name)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"shiftd_uptime_seconds", "shiftd_requests_total",
		"shiftd_jobs_queue_depth", "shiftd_jobs_admitted_total",
		"shiftd_jobs_rejected_total", "shiftd_jobs_cancelled_total",
		`shiftd_job_latency_seconds{quantile="0.5"}`,
		"shiftd_job_latency_seconds_sum", "shiftd_job_latency_seconds_count",
		"shiftd_store_hits_total", "shiftd_cells_simulated_total",
		"shiftd_cells_sampled_total",
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("metrics body missing %q", want)
		}
	}
	if !strings.Contains(body.String(), "shiftd_jobs_admitted_total 1") {
		t.Errorf("admitted counter not reflected:\n%s", body.String())
	}
}

// TestBodyLimit413: request bodies past -max-body answer 413.
func TestBodyLimit413(t *testing.T) {
	rs := shift.NewResultCache()
	engine := shift.NewEngine(0, rs)
	jm := jobs.New(jobs.Config{Run: engine.RunOne})
	t.Cleanup(jm.Close)
	srv := newServer(engine, rs, testOpts(), jm, 256)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	big := make([]map[string]any, 64)
	for i := range big {
		big[i] = map[string]any{"workload": "Web Search", "design": "Baseline"}
	}
	body, _ := json.Marshal(map[string]any{"cells": big})
	for _, path := range []string{"/v1/run", "/v1/grid", "/v1/jobs"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with oversized body = %d, want 413", path, resp.StatusCode)
		}
	}
	// A small body still works.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"workload": "Web Search", "design": "Baseline"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("small body = %d, want 200", resp.StatusCode)
	}
}

// TestWriteRunError maps engine/context failures to statuses: timeout
// → 504, client disconnect → 503, anything else → 500.
func TestWriteRunError(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want int
	}{
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"cancel", context.Canceled, http.StatusServiceUnavailable},
		{"other", errors.New("boom"), http.StatusInternalServerError},
	} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/run", nil)
		writeRunError(rec, req, tc.err)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, rec.Code, tc.want)
		}
	}
	// The request context's own verdict wins even when the error value
	// is a bare context.Canceled (await returns ctx.Err() on timeout
	// via cause-less cancellation too).
	rec := httptest.NewRecorder()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/run", nil).WithContext(ctx)
	writeRunError(rec, req, context.Canceled)
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("expired request context: status %d, want 504", rec.Code)
	}
}
