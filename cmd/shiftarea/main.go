// Command shiftarea prints the analytical storage, area, and
// performance-density budgets behind the paper's cost arguments
// (Sections 2.3, 4.2, 5.1, 5.6, 6.2) without running any simulation.
//
// Usage:
//
//	shiftarea                 # storage/area report
//	shiftarea -cores 64       # scale the aggregate analysis
//	shiftarea -virtpif        # Section 6.2 virtualized-PIF cost only
package main

import (
	"flag"
	"fmt"

	"shift"
	"shift/internal/area"
	"shift/internal/cpu"
)

func main() {
	var (
		cores   = flag.Int("cores", 16, "cores for aggregate cost analysis")
		virtpif = flag.Bool("virtpif", false, "print only the Section 6.2 virtualized per-core PIF cost")
	)
	flag.Parse()

	if *virtpif {
		b := area.VirtualizedPIFLLCBytes(32768, *cores)
		fmt.Printf("Virtualized per-core PIF (32K records, %d cores): %.2f MB of LLC capacity\n",
			*cores, float64(b)/(1024*1024))
		fmt.Println("(grows linearly with cores; SHIFT's shared history stays at 171KB)")
		return
	}

	fmt.Println(shift.RunStorageReport())

	fmt.Println("Hypothetical PD if a prefetcher delivered the paper's speedups:")
	for _, tc := range []struct {
		t  cpu.CoreType
		sp float64
	}{{cpu.FatOoO, 1.23}, {cpu.LeanOoO, 1.21}, {cpu.LeanIO, 1.17}} {
		pif := area.Evaluate("PIF_32K", tc.t, area.PIFAreaPerCoreMM2(32768, 8192), tc.sp)
		sh := area.Evaluate("SHIFT", tc.t,
			area.SHIFTTotalAreaMM2(16*512*1024)/float64(*cores), tc.sp*0.98)
		fmt.Printf("  %-8s  %s\n", tc.t, pif)
		fmt.Printf("            %s\n", sh)
	}
}
