package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"shift"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenOpts pins a small single-workload configuration with a fixed
// seed; the simulator is a pure function of it, so the rendered output
// must be byte-identical run over run and across parallelism settings.
func goldenOpts() shift.Options {
	o := shift.QuickOptions()
	o.Workloads = []string{"Web Search"}
	o.Cores = 4
	o.WarmupRecords = 6000
	o.MeasureRecords = 6000
	o.Seed = 1
	return o
}

// TestGoldenOutput locks the CLI's rendered experiment output for a
// small fixed-seed run. Regenerate with: go test ./cmd/shiftsim -run
// TestGoldenOutput -update
func TestGoldenOutput(t *testing.T) {
	for _, name := range []string{"storage", "fig3", "fig9"} {
		t.Run(name, func(t *testing.T) {
			o := goldenOpts()
			o.Parallelism = 4 // golden output must not depend on the pool size
			got, err := runOne(name, o, nil)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
					name, path, got, want)
			}
		})
	}
}
