// Command shiftsim regenerates the SHIFT paper's figures and tables from
// the simulator.
//
// Usage:
//
//	shiftsim -experiment fig8                 # one experiment, full scale
//	shiftsim -experiment all -quick           # everything, reduced scale
//	shiftsim -experiment fig7 -workloads "OLTP Oracle,Web Search"
//	shiftsim -experiment fig6 -sizes 1024,8192,32768
//
// Experiments: tableI, fig1, fig2, fig3, fig6, fig7, fig8, fig9, fig10,
// pd, power, storage, sensitivity, generator, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"shift"
)

func main() {
	var (
		experiment = flag.String("experiment", "fig8", "experiment to run (tableI, fig1, fig2, fig3, fig6, fig7, fig8, fig9, fig10, pd, power, storage, sensitivity, generator, all)")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: all seven)")
		cores      = flag.Int("cores", 16, "number of cores (1-16)")
		warmup     = flag.Int64("warmup", 0, "warmup records per core (0 = scale default)")
		measure    = flag.Int64("measure", 0, "measured records per core (0 = scale default)")
		seed       = flag.Int64("seed", 1, "simulator seed")
		quick      = flag.Bool("quick", false, "reduced scale (~6x faster)")
		sizes      = flag.String("sizes", "", "comma-separated aggregate history sizes for fig6")
		coreType   = flag.String("core", "lean-ooo", "core type: fat-ooo, lean-ooo, lean-io")
	)
	flag.Parse()

	opts := shift.DefaultOptions()
	if *quick {
		opts = shift.QuickOptions()
	}
	opts.Cores = *cores
	if *warmup > 0 {
		opts.WarmupRecords = *warmup
	}
	if *measure > 0 {
		opts.MeasureRecords = *measure
	}
	opts.Seed = *seed
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ",") {
			opts.Workloads = append(opts.Workloads, strings.TrimSpace(w))
		}
	}
	switch strings.ToLower(*coreType) {
	case "fat-ooo":
		opts.CoreType = shift.FatOoO
	case "lean-io":
		opts.CoreType = shift.LeanIO
	case "lean-ooo":
		opts.CoreType = shift.LeanOoO
	default:
		fail(fmt.Errorf("unknown core type %q", *coreType))
	}

	var fig6Sizes []int
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fail(err)
			}
			fig6Sizes = append(fig6Sizes, n)
		}
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"tableI", "storage", "fig1", "fig2", "fig3", "fig6",
			"fig7", "fig8", "fig9", "fig10", "pd", "power", "sensitivity", "generator"}
	}
	for _, name := range names {
		start := time.Now()
		out, err := runOne(name, opts, fig6Sizes)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// runOne dispatches one experiment by name.
func runOne(name string, opts shift.Options, fig6Sizes []int) (string, error) {
	switch strings.ToLower(name) {
	case "tablei":
		return shift.TableI(), nil
	case "storage":
		return shift.RunStorageReport().String(), nil
	case "fig1":
		f, err := shift.RunFigure1(opts)
		return str(f), err
	case "fig2":
		pd, err := shift.RunPerfDensity(opts)
		if err != nil {
			return "", err
		}
		return pd.Figure2(), nil
	case "fig3":
		f, err := shift.RunFigure3(opts)
		return str(f), err
	case "fig6":
		f, err := shift.RunFigure6(opts, fig6Sizes)
		return str(f), err
	case "fig7":
		f, err := shift.RunFigure7(opts)
		return str(f), err
	case "fig8":
		f, err := shift.RunFigure8(opts)
		return str(f), err
	case "fig9":
		f, err := shift.RunFigure9(opts)
		return str(f), err
	case "fig10":
		f, err := shift.RunFigure10(opts)
		return str(f), err
	case "pd":
		f, err := shift.RunPerfDensity(opts)
		return str(f), err
	case "power":
		f, err := shift.RunPowerStudy(opts)
		return str(f), err
	case "sensitivity":
		f, err := shift.RunSensitivity(opts)
		return str(f), err
	case "generator":
		f, err := shift.RunGeneratorStudy(opts)
		return str(f), err
	default:
		return "", fmt.Errorf("unknown experiment %q", name)
	}
}

// str formats a stringer unless the run failed.
func str(v fmt.Stringer) string {
	if v == nil {
		return ""
	}
	return v.String()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "shiftsim:", err)
	os.Exit(1)
}
