// Command shiftsim regenerates the SHIFT paper's figures and tables from
// the simulator.
//
// Usage:
//
//	shiftsim -experiment fig8                 # one experiment, full scale
//	shiftsim -experiment all -quick           # everything, reduced scale
//	shiftsim -experiment fig7 -workloads "OLTP Oracle,Web Search"
//	shiftsim -experiment fig8 -spec burst.yaml       # declarative workload spec
//	shiftsim -experiment fig7 -workloads "Web Search" -spec a.yaml,b.json
//	shiftsim -experiment fig6 -sizes 1024,8192,32768
//	shiftsim -experiment all -parallel 8      # 8 engine workers (same output)
//	shiftsim -experiment fig8 -cache=false    # disable cell memoization
//	shiftsim -experiment fig7 -v              # engine summary (batched cells etc.)
//	shiftsim -experiment fig7 -no-batch       # disable stream batching (same output)
//	shiftsim -experiment fig7 -sample 10      # interval sampling, 1-in-10 detailed
//	shiftsim -experiment all -cache-dir ~/.shiftcache   # persist cells across runs
//	shiftsim -experiment fig8 -cpuprofile cpu.out -memprofile mem.out
//
// Experiments: tableI, fig1, fig2, fig3, fig6, fig7, fig8, fig9, fig10,
// pd, power, storage, sensitivity, generator, all.
//
// The -cpuprofile and -memprofile flags write pprof profiles covering the
// experiment runs (inspect with `go tool pprof`); see the README's
// "Performance" section for the profiling workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"shift"
)

func main() {
	var (
		experiment = flag.String("experiment", "fig8", "experiment to run (tableI, fig1, fig2, fig3, fig6, fig7, fig8, fig9, fig10, pd, power, storage, sensitivity, generator, all)")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: all seven)")
		specFiles  = flag.String("spec", "", "comma-separated workload spec files (YAML or JSON); each compiled spec is appended to the workload set")
		cores      = flag.Int("cores", 16, "number of cores (1-16)")
		warmup     = flag.Int64("warmup", 0, "warmup records per core (0 = scale default)")
		measure    = flag.Int64("measure", 0, "measured records per core (0 = scale default)")
		seed       = flag.Int64("seed", 1, "simulator seed")
		quick      = flag.Bool("quick", false, "reduced scale (~6x faster)")
		sizes      = flag.String("sizes", "", "comma-separated aggregate history sizes for fig6")
		coreType   = flag.String("core", "lean-ooo", "core type: fat-ooo, lean-ooo, lean-io")
		parallel   = flag.Int("parallel", 0, "experiment-engine workers (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
		useCache   = flag.Bool("cache", true, "memoize per-cell results across experiments (shared baselines are simulated once)")
		cacheDir   = flag.String("cache-dir", "", "persist per-cell results under this directory (tiered memory-over-disk store; a repeated sweep across process restarts simulates nothing)")
		noBatch    = flag.Bool("no-batch", false, "disable shared-stream batching of grid cells (diagnostics; output is identical)")
		sample     = flag.Int64("sample", 0, "sampling period: simulate 1 interval in N in detail and fast-forward the rest with functional warming (0 or 1 = exact, the default; sampled results carry error bounds and are approximations)")
		sampleIntv = flag.Int64("sample-interval", 0, "measured interval length in records per core for -sample (0 = default 500)")
		sampleWarm = flag.Float64("sample-warm", 0, "fraction of each interval re-simulated in detail before measuring for -sample (0 = default 0.25)")
		sampleConf = flag.Float64("sample-confidence", 0, "confidence level of the reported error bounds for -sample: 0.90, 0.95, or 0.99 (0 = default 0.95)")
		verbose    = flag.Bool("v", false, "print an engine summary (simulated/batched/stream-generations-avoided cells) after the runs")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after the runs) to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		// fail() exits through os.Exit, so stop explicitly there too.
		stopCPUProfile = func() { pprof.StopCPUProfile(); f.Close() }
		defer stopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "shiftsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "shiftsim:", err)
			}
		}()
	}

	opts := shift.DefaultOptions()
	if *quick {
		opts = shift.QuickOptions()
	}
	opts.Cores = *cores
	if *warmup > 0 {
		opts.WarmupRecords = *warmup
	}
	if *measure > 0 {
		opts.MeasureRecords = *measure
	}
	opts.Seed = *seed
	opts.Parallelism = *parallel
	opts.Sampling = shift.Sampling{
		Period:          *sample,
		IntervalRecords: *sampleIntv,
		WarmupFraction:  *sampleWarm,
		Confidence:      *sampleConf,
	}
	switch {
	case *cacheDir != "":
		st, err := shift.NewTieredStore(*cacheDir)
		if err != nil {
			fail(err)
		}
		opts.Cache = st
	case *useCache:
		opts.Cache = shift.NewResultCache()
	}
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ",") {
			opts.Workloads = append(opts.Workloads, strings.TrimSpace(w))
		}
	}
	if *specFiles != "" {
		// Compiled specs run exactly like catalog workloads: the returned
		// ID goes into the workload set, figure rows render the spec's
		// display name. -spec alone runs only the specs; combined with
		// -workloads it extends the subset.
		for _, path := range strings.Split(*specFiles, ",") {
			id, err := shift.LoadSpecFile(strings.TrimSpace(path))
			if err != nil {
				fail(err)
			}
			opts.Workloads = append(opts.Workloads, id)
		}
	}
	ct, err := shift.ParseCoreType(*coreType)
	if err != nil {
		fail(err)
	}
	opts.CoreType = ct

	var fig6Sizes []int
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fail(err)
			}
			fig6Sizes = append(fig6Sizes, n)
		}
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = shift.Experiments()
	}
	// One engine across all experiments of the invocation, so cells
	// shared between figures are deduplicated and the -v summary covers
	// the whole run. With Engine set, the engine's own SetBatching —
	// not Options.DisableBatching — governs batching.
	engine := shift.NewEngine(opts.Parallelism, opts.Cache)
	engine.SetBatching(!*noBatch)
	opts.Engine = engine

	for _, name := range names {
		start := time.Now()
		out, err := runOne(name, opts, fig6Sizes)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if opts.Cache != nil {
		if hits, misses := opts.Cache.Stats(); hits+misses > 0 {
			fmt.Printf("[cell cache: %d hits, %d misses, %d cells stored]\n",
				hits, misses, opts.Cache.Len())
		}
	}
	if *verbose {
		es := engine.Stats()
		fmt.Printf("[engine: %d cells simulated (%d sampled), %d batched, %d stream generations avoided, %d deduped]\n",
			es.Simulated, es.SampledCells, es.Batched, es.StreamsShared, es.Deduped)
	}
}

// runOne dispatches one experiment by name through the shared registry
// (shift.RunExperiment — the same dispatch cmd/shiftd serves), keeping
// only the -sizes override for Figure 6 local to the CLI.
func runOne(name string, opts shift.Options, fig6Sizes []int) (string, error) {
	if len(fig6Sizes) > 0 && strings.EqualFold(name, "fig6") {
		f, err := shift.RunFigure6(opts, fig6Sizes)
		if err != nil {
			return "", err
		}
		return f.String(), nil
	}
	return shift.RunExperiment(name, opts)
}

// stopCPUProfile flushes the CPU profile on the os.Exit error path.
var stopCPUProfile = func() {}

func fail(err error) {
	stopCPUProfile()
	fmt.Fprintln(os.Stderr, "shiftsim:", err)
	os.Exit(1)
}
