package main

import (
	"strings"
	"testing"

	"shift"
)

// tinyOpts keeps CLI-dispatch tests fast.
func tinyOpts() shift.Options {
	o := shift.QuickOptions()
	o.Workloads = []string{"Web Search"}
	o.Cores = 4
	o.WarmupRecords = 6000
	o.MeasureRecords = 6000
	return o
}

func TestRunOneDispatch(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"tableI", "Table I"},
		{"storage", "Storage"},
		{"fig3", "Figure 3"},
		{"fig8", "Figure 8"},
		{"fig9", "Figure 9"},
		{"power", "5.7"},
		{"generator", "6.1"},
	}
	for _, c := range cases {
		out, err := runOne(c.name, tinyOpts(), nil)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("%s output missing %q", c.name, c.want)
		}
	}
}

func TestRunOneFig6Sizes(t *testing.T) {
	out, err := runOne("fig6", tinyOpts(), []int{1024, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1K") || !strings.Contains(out, "4K") {
		t.Errorf("fig6 output missing custom sizes:\n%s", out)
	}
}

func TestRunOneUnknown(t *testing.T) {
	if _, err := runOne("nope", tinyOpts(), nil); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunOneBadWorkload locks the failure path: a driver error must
// come back as an error, not a panic from rendering a typed-nil figure.
func TestRunOneBadWorkload(t *testing.T) {
	o := tinyOpts()
	o.Workloads = []string{"No Such Workload"}
	for _, name := range []string{"fig1", "fig7", "fig8", "sensitivity"} {
		if _, err := runOne(name, o, nil); err == nil {
			t.Errorf("%s: bad workload accepted", name)
		}
	}
}

// TestRunOneSampled: the -sample flags thread through the shared
// dispatch — a sampled figure renders with the same shape as exact.
func TestRunOneSampled(t *testing.T) {
	o := tinyOpts()
	o.MeasureRecords = 10000
	o.Sampling = shift.Sampling{Period: 4, IntervalRecords: 500}
	out, err := runOne("fig7", o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 7") {
		t.Errorf("sampled fig7 output missing header:\n%s", out)
	}
	o.Sampling.WarmupFraction = 1.5
	if _, err := runOne("fig7", o, nil); err == nil {
		t.Error("invalid sampling policy accepted")
	}
}
