package shift

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// This file is the engine's failure-containment layer: panics inside
// cell or batch execution are recovered into typed per-cell errors
// (PanicError), and an optional per-cell watchdog converts stuck cells
// into typed timeouts (TimeoutError) instead of wedging a worker slot.
// Both preserve RunAll's determinism contract — a failing cell yields
// the error of the lowest-index failing cell, and every other cell of
// the grid still completes.

// PanicError is the typed per-cell error a recovered simulation panic
// becomes: the panicking cell fails, the rest of the grid completes,
// and the process survives. The simulator is deterministic, so a panic
// reproduces on retry — PanicError is never transient.
type PanicError struct {
	// Value is the recovered panic value, stringified.
	Value string
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error renders the panic value; the stack is carried for logs.
func (e *PanicError) Error() string {
	return fmt.Sprintf("simulation panicked: %s", e.Value)
}

// TimeoutError is the typed per-cell error the watchdog produces for a
// cell (or batch) that exceeded the engine's cell timeout: the stuck
// simulation is abandoned to finish in the background, its worker slot
// is freed, and the cell fails with this error instead of wedging the
// grid. Timeouts are transient (IsTransient): a cell stuck behind a
// load spike can succeed on retry.
type TimeoutError struct {
	// Timeout is the budget the cell exceeded.
	Timeout time.Duration
	// Cells is the number of cells sharing the budget (1 for a single
	// cell; a batch's budget scales with its size).
	Cells int
}

// Error names the exceeded budget.
func (e *TimeoutError) Error() string {
	if e.Cells > 1 {
		return fmt.Sprintf("simulation watchdog: batch of %d cells exceeded %s", e.Cells, e.Timeout)
	}
	return fmt.Sprintf("simulation watchdog: cell exceeded %s", e.Timeout)
}

// IsTransient reports whether a cell error is worth retrying: the
// failure came from infrastructure pressure (a watchdog timeout) rather
// than from the simulation itself (validation errors and panics are
// deterministic — retrying reproduces them). shiftd's job scheduler
// uses this to requeue transiently-failed job cells a bounded number
// of times.
func IsTransient(err error) bool {
	var te *TimeoutError
	return errors.As(err, &te)
}

// SetCellTimeout arms the per-cell watchdog: a cell taking longer than
// d fails with a TimeoutError (a batch of K cells gets K*d). The
// abandoned simulation finishes in the background — its goroutine is
// not killable — and its eventual result still seeds the store, but
// its worker slot is freed immediately, so one wedged cell cannot
// starve the pool. 0 (the default) disables the watchdog; timeouts are
// inherently racy, so deterministic sweeps should leave it off and
// services should set it well above the slowest legitimate cell. Not
// safe to call concurrently with RunAll.
func (e *Engine) SetCellTimeout(d time.Duration) { e.cellTimeout = d }

// guardCell runs one cell's simulation with panics recovered into
// PanicError.
func (e *Engine) guardCell(cfg Config) (r RunResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			e.panicked.Add(1)
			err = &PanicError{Value: fmt.Sprint(p), Stack: debug.Stack()}
		}
	}()
	if e.runCell != nil {
		return e.runCell(cfg)
	}
	return Run(cfg)
}

// guardBatch runs one shared-stream batch with panics recovered into
// PanicError (the engine then falls back to per-cell execution, which
// isolates the panicking member).
func (e *Engine) guardBatch(cfgs []Config) (rs []RunResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			e.panicked.Add(1)
			err = &PanicError{Value: fmt.Sprint(p), Stack: debug.Stack()}
		}
	}()
	if e.runBatch != nil {
		return e.runBatch(cfgs)
	}
	return RunBatch(cfgs)
}

// execCell executes one cell under the containment layer: panic
// recovery always, the watchdog when armed.
func (e *Engine) execCell(cfg Config) (RunResult, error) {
	if e.cellTimeout <= 0 {
		return e.guardCell(cfg)
	}
	type outcome struct {
		r   RunResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := e.guardCell(cfg)
		ch <- outcome{r, err}
	}()
	t := time.NewTimer(e.cellTimeout)
	defer t.Stop()
	select {
	case o := <-ch:
		return o.r, o.err
	case <-t.C:
		e.timedOut.Add(1)
		return RunResult{}, &TimeoutError{Timeout: e.cellTimeout, Cells: 1}
	}
}

// execBatch executes one shared-stream batch under the containment
// layer. The batch budget scales with its size: K cells legitimately
// take K times one cell.
func (e *Engine) execBatch(cfgs []Config) ([]RunResult, error) {
	if e.cellTimeout <= 0 {
		return e.guardBatch(cfgs)
	}
	type outcome struct {
		rs  []RunResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		rs, err := e.guardBatch(cfgs)
		ch <- outcome{rs, err}
	}()
	budget := e.cellTimeout * time.Duration(len(cfgs))
	t := time.NewTimer(budget)
	defer t.Stop()
	select {
	case o := <-ch:
		return o.rs, o.err
	case <-t.C:
		e.timedOut.Add(1)
		return nil, &TimeoutError{Timeout: budget, Cells: len(cfgs)}
	}
}
