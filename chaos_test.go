package shift

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"shift/internal/store"
)

// This file is the chaos suite: every test drives the stack through the
// seedable fault-injection blob store (internal/store.Fault) or through
// real on-disk corruption, and proves the resilience contract — grids
// complete, output stays byte-identical to fault-free runs, corruption
// is quarantined once and self-heals, and failures surface only in
// counters and typed errors, never as experiment errors.

// chaosCells is a small two-workload, three-design grid: big enough to
// exercise batching, dedup, and the store on every path.
func chaosCells(o Options) []Cell {
	var cells []Cell
	for _, w := range o.Workloads {
		for _, d := range []Design{DesignBaseline, DesignNextLine, DesignSHIFT} {
			cells = append(cells, cell(o.config(w, d)))
		}
	}
	return cells
}

// chaosPlan is a hostile but survivable fault schedule: roughly a third
// of reads error, a fifth of writes fail (some with ENOSPC), and reads
// that do succeed are frequently corrupted or torn.
func chaosPlan(seed int64) store.FaultPlan {
	return store.FaultPlan{
		Seed:         seed,
		GetErrorRate: 0.20,
		PutErrorRate: 0.15,
		ENOSPCRate:   0.05,
		CorruptRate:  0.15,
		TornRate:     0.10,
	}
}

// TestChaosGridCompletesUnderStoreFaults is the keystone: a grid run
// against a heavily fault-injected store must complete without error
// and produce results byte-identical to a fault-free run — store
// failures cost recomputation, never correctness.
func TestChaosGridCompletesUnderStoreFaults(t *testing.T) {
	o := engineTestOptions()
	cells := chaosCells(o)

	clean := NewEngine(4, NewResultCache())
	want, err := clean.RunAll(cells)
	if err != nil {
		t.Fatal(err)
	}

	fault := store.NewFault(store.NewMem(), chaosPlan(42))
	ds := newDiskStoreStack(fault, nil)
	chaotic := NewEngine(4, ds)
	for round := 1; round <= 3; round++ {
		got, err := chaotic.RunAll(cells)
		if err != nil {
			t.Fatalf("round %d: grid failed under store faults: %v", round, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: results under faults differ from fault-free run", round)
		}
	}
	if fault.Injected() == 0 {
		t.Fatal("no faults injected — the chaos schedule proved nothing")
	}
	if ds.Errors() == 0 {
		t.Error("injected IO failures never surfaced in DiskStore.Errors()")
	}
}

// TestChaosFigureOutputByteIdentical proves the user-visible contract:
// a figure rendered through a fault-injected store is byte-identical to
// the fault-free rendering whenever the grid completes.
func TestChaosFigureOutputByteIdentical(t *testing.T) {
	o := engineTestOptions()

	clean := o
	clean.Engine = NewEngine(4, NewResultCache())
	want, err := RunExperiment("7", clean)
	if err != nil {
		t.Fatal(err)
	}

	fault := store.NewFault(store.NewMem(), chaosPlan(7))
	faulty := o
	faulty.Engine = NewEngine(4, newDiskStoreStack(fault, nil))
	got, err := RunExperiment("7", faulty)
	if err != nil {
		t.Fatalf("figure failed under store faults: %v", err)
	}
	if got != want {
		t.Error("figure output under store faults is not byte-identical to the fault-free run")
	}
	if fault.Injected() == 0 {
		t.Fatal("no faults injected — the chaos schedule proved nothing")
	}
}

// TestChaosDiskCorruptionQuarantineAndSelfHeal flips real bytes in a
// real blob on disk: the next Lookup detects it, quarantines the file
// for inspection, and the next Store heals the key.
func TestChaosDiskCorruptionQuarantineAndSelfHeal(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engineTestOptions().config("Web Search", DesignBaseline)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := cfg.Key()
	ds.Store(key, r)

	p := filepath.Join(dir, key[:2], key+".json")
	blob, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/3] ^= 0xff
	if err := os.WriteFile(p, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := ds.Lookup(key); ok {
		t.Fatal("corrupt blob served as a hit")
	}
	if got := ds.Quarantined(); got != 1 {
		t.Fatalf("Quarantined() = %d, want 1", got)
	}
	if ds.Errors() == 0 {
		t.Error("corruption never surfaced in Errors()")
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", key+".json")); err != nil {
		t.Errorf("quarantined bytes not preserved: %v", err)
	}
	if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt blob still in the main tree: %v", err)
	}

	// Self-heal: the next Store recreates the key, and the result reads
	// back exactly.
	ds.Store(key, r)
	got, ok := ds.Lookup(key)
	if !ok || !reflect.DeepEqual(got, r) {
		t.Fatalf("self-healed lookup = (%+v, %t), want original result", got, ok)
	}

	// A fresh handle on the same directory sees the preserved quarantine.
	ds2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds2.Quarantined(); got != 1 {
		t.Errorf("reopened Quarantined() = %d, want 1", got)
	}
	if got := ds2.Len(); got != 1 {
		t.Errorf("reopened Len() = %d, want 1 (quarantine excluded)", got)
	}
}

// TestChaosLegacyBlobReadCompat writes a raw pre-integrity blob (no CRC
// footer) straight onto disk: it must be served unverified, and the
// next Store upgrades it to a checksummed blob in place.
func TestChaosLegacyBlobReadCompat(t *testing.T) {
	dir := t.TempDir()
	cfg := engineTestOptions().config("OLTP Oracle", DesignSHIFT)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := cfg.Key()
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, key[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(p, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	ds, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ds.Lookup(key)
	if !ok || !reflect.DeepEqual(got, r) {
		t.Fatalf("legacy blob lookup = (%+v, %t), want served unverified", got, ok)
	}
	if ds.Errors() != 0 {
		t.Errorf("legacy blob counted as an error: Errors() = %d", ds.Errors())
	}

	ds.Store(key, r)
	upgraded, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(upgraded, []byte("#crc32c:")) {
		t.Error("rewrite did not upgrade the legacy blob to a checksummed one")
	}
	if _, ok := ds.Lookup(key); !ok {
		t.Error("upgraded blob no longer readable")
	}
}

// TestChaosLenReturnsLastKnownCount is the Len satellite: a transient
// walk failure must return the last known count — never a misleading
// zero — and land in Errors().
func TestChaosLenReturnsLastKnownCount(t *testing.T) {
	fault := store.NewFault(store.NewMem(), store.FaultPlan{})
	ds := newDiskStoreStack(fault, nil)
	for i, key := range []string{"cell-a", "cell-b", "cell-c"} {
		ds.Store(key, RunResult{MPKI: float64(i)})
	}
	if got := ds.Len(); got != 3 {
		t.Fatalf("Len() = %d, want 3", got)
	}

	// Three scripted failures exhaust the retry layer's attempts, so the
	// walk error reaches DiskStore.
	fault.FailNextLens(3)
	errsBefore := ds.Errors()
	if got := ds.Len(); got != 3 {
		t.Fatalf("Len() under walk failure = %d, want last known 3", got)
	}
	if ds.Errors() != errsBefore+1 {
		t.Errorf("walk failure not counted: Errors() = %d, want %d", ds.Errors(), errsBefore+1)
	}

	// Recovery resumes live counts.
	ds.Store("cell-d", RunResult{MPKI: 4})
	if got := ds.Len(); got != 4 {
		t.Errorf("Len() after recovery = %d, want 4", got)
	}
}

// TestTieredStoreServesFromMemoryUnderDiskFailure is the TieredStore
// satellite: with the disk tier hard-failing, hot cells keep serving
// from memory, new results keep landing, and the counters prove the
// fallback happened.
func TestTieredStoreServesFromMemoryUnderDiskFailure(t *testing.T) {
	fault := store.NewFault(store.NewMem(), store.FaultPlan{})
	ts := newTieredStore(newDiskStoreStack(fault, nil))

	ts.Store("hot", RunResult{MPKI: 1})
	if _, ok := ts.Lookup("hot"); !ok {
		t.Fatal("warm lookup missed")
	}

	// Hard-fail every disk operation.
	fault.SetPlan(store.FaultPlan{GetErrorRate: 1, PutErrorRate: 1})

	if r, ok := ts.Lookup("hot"); !ok || r.MPKI != 1 {
		t.Error("memory tier stopped serving while disk was failing")
	}
	ts.Store("fresh", RunResult{MPKI: 2})
	if r, ok := ts.Lookup("fresh"); !ok || r.MPKI != 2 {
		t.Error("new results not landing in memory while disk was failing")
	}
	if ts.Errors() == 0 {
		t.Error("disk failures never surfaced in Errors()")
	}

	// Sustained failure trips the breaker (default: 8 failures in the
	// last 16 ops): disk is then skipped entirely and MemOnlyOps grows.
	for i := 0; i < 16; i++ {
		ts.Lookup("absent")
	}
	h := ts.Health()
	if h.BreakerState != store.BreakerOpen {
		t.Fatalf("breaker state = %q after sustained failure, want open", h.BreakerState)
	}
	if h.BreakerTrips == 0 {
		t.Error("breaker trip not counted")
	}
	opsBefore := fault.Ops()
	ts.Lookup("absent")
	ts.Store("while-open", RunResult{MPKI: 3})
	if fault.Ops() != opsBefore {
		t.Error("disk tier still reached while the breaker was open")
	}
	if ts.Health().MemOnlyOps == 0 {
		t.Error("memory-only operations not counted")
	}
	if r, ok := ts.Lookup("while-open"); !ok || r.MPKI != 3 {
		t.Error("memory tier dropped a write made while the breaker was open")
	}
}

// TestTieredBreakerRecoversHalfOpen drives the breaker's full recovery
// cycle on a fake clock: trip under failure, reject during cooldown,
// probe half-open after it, and close once the disk is healthy again.
func TestTieredBreakerRecoversHalfOpen(t *testing.T) {
	fault := store.NewFault(store.NewMem(), store.FaultPlan{})
	ts := newTieredStore(newDiskStoreStack(fault, nil))
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	ts.breaker = store.NewBreaker(store.BreakerConfig{Window: 4, Threshold: 2, Cooldown: time.Minute, Now: clock})

	ts.Store("k", RunResult{MPKI: 1})
	fault.SetPlan(store.FaultPlan{GetErrorRate: 1})
	for i := 0; i < 2; i++ {
		ts.Lookup("absent")
	}
	if got := ts.breaker.State(); got != store.BreakerOpen {
		t.Fatalf("breaker = %q after threshold failures, want open", got)
	}

	// During cooldown the disk is untouched.
	opsBefore := fault.Ops()
	ts.Lookup("absent")
	if fault.Ops() != opsBefore {
		t.Error("disk probed during cooldown")
	}

	// Past cooldown with the disk healthy again: one half-open probe
	// closes the breaker and write-through resumes.
	fault.SetPlan(store.FaultPlan{})
	now = now.Add(2 * time.Minute)
	ts.Lookup("absent")
	if got := ts.breaker.State(); got != store.BreakerClosed {
		t.Fatalf("breaker = %q after healthy probe, want closed", got)
	}
	ts.Store("post-recovery", RunResult{MPKI: 9})
	if b, ok, _ := fault.Get("post-recovery"); !ok || len(b) == 0 {
		t.Error("write-through did not resume after recovery")
	}
}

// TestEnginePanicContainment injects a panicking simulation: the
// panicking cell fails with a typed PanicError carrying the panic value
// and stack, every other cell completes and seeds the store, and the
// reported error is the lowest-index failing cell's.
func TestEnginePanicContainment(t *testing.T) {
	o := engineTestOptions()
	cfgBad := o.config("Web Search", DesignBaseline)
	cfgGood := o.config("OLTP Oracle", DesignBaseline)
	cache := NewResultCache()
	e := NewEngine(2, cache)
	e.runCell = func(cfg Config) (RunResult, error) {
		if cfg.Workload == "Web Search" {
			panic("chaos: injected panic")
		}
		return Run(cfg)
	}

	_, err := e.RunAll([]Cell{cell(cfgBad), cell(cfgGood)})
	if err == nil {
		t.Fatal("panicking cell did not fail the grid")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *PanicError", err, err)
	}
	if pe.Value != "chaos: injected panic" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {Value: %q, Stack: %d bytes}, want value and stack", pe.Value, len(pe.Stack))
	}
	if IsTransient(err) {
		t.Error("panics are deterministic and must not classify as transient")
	}
	if _, ok := cache.Lookup(cfgGood.Key()); !ok {
		t.Error("healthy cell did not complete and seed the store")
	}
	if got := e.Stats().Panicked; got != 1 {
		t.Errorf("Stats().Panicked = %d, want 1", got)
	}
}

// TestEngineBatchPanicFallsBackPerCell panics the shared-stream batch
// path: the engine must fall back to per-cell execution, isolating the
// failure, and — since per-cell runs the real simulator here — the grid
// then completes with correct results.
func TestEngineBatchPanicFallsBackPerCell(t *testing.T) {
	o := engineTestOptions()
	o.Workloads = []string{"Web Search"}
	cells := chaosCells(o) // one workload, three designs: one batch
	cache := NewResultCache()
	e := NewEngine(2, cache)
	e.runBatch = func([]Config) ([]RunResult, error) {
		panic("chaos: batch panic")
	}

	want, err := NewEngine(2, NewResultCache()).RunAll(cells)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.RunAll(cells)
	if err != nil {
		t.Fatalf("grid failed despite per-cell fallback: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("fallback results differ from the batch-free run")
	}
	if got := e.Stats().Panicked; got != 1 {
		t.Errorf("Stats().Panicked = %d, want 1 (the batch attempt)", got)
	}
}

// TestEngineWatchdogTimesOutStuckCell wedges one cell forever: the
// watchdog must fail it with a transient TimeoutError while the rest of
// the grid completes, and the stuck cell's worker slot is freed.
func TestEngineWatchdogTimesOutStuckCell(t *testing.T) {
	o := engineTestOptions()
	cfgStuck := o.config("Web Search", DesignBaseline)
	cfgGood := o.config("OLTP Oracle", DesignBaseline)
	block := make(chan struct{})
	defer close(block)

	cache := NewResultCache()
	e := NewEngine(1, cache) // one slot: a leaked slot would wedge the grid
	e.SetCellTimeout(100 * time.Millisecond)
	e.runCell = func(cfg Config) (RunResult, error) {
		if cfg.Workload == "Web Search" {
			<-block
		}
		return RunResult{MPKI: 1}, nil
	}

	_, err := e.RunAll([]Cell{cell(cfgStuck), cell(cfgGood)})
	if err == nil {
		t.Fatal("stuck cell did not fail the grid")
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T (%v), want *TimeoutError", err, err)
	}
	if te.Timeout != 100*time.Millisecond || te.Cells != 1 {
		t.Errorf("TimeoutError = %+v", te)
	}
	if !IsTransient(err) {
		t.Error("watchdog timeouts must classify as transient (retryable)")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Errorf("error %q does not name the watchdog", err)
	}
	if _, ok := cache.Lookup(cfgGood.Key()); !ok {
		t.Error("grid did not continue past the stuck cell — worker slot not freed")
	}
	if got := e.Stats().TimedOut; got != 1 {
		t.Errorf("Stats().TimedOut = %d, want 1", got)
	}
}

// TestChaosFaultStoreDeterministic re-runs the same fault schedule and
// grid twice: same seed, same injected outcomes, same counters — the
// harness itself is reproducible.
func TestChaosFaultStoreDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		fault := store.NewFault(store.NewMem(), chaosPlan(99))
		ds := newDiskStoreStack(fault, nil)
		for i := 0; i < 50; i++ {
			key := strings.Repeat("k", 1+i%5) + string(rune('a'+i%7))
			ds.Store(key, RunResult{MPKI: float64(i)})
			ds.Lookup(key)
		}
		return fault.Injected(), ds.Errors()
	}
	i1, e1 := run()
	i2, e2 := run()
	if i1 != i2 || e1 != e2 {
		t.Errorf("same seed diverged: injected %d vs %d, errors %d vs %d", i1, i2, e1, e2)
	}
	if i1 == 0 {
		t.Error("schedule injected nothing")
	}
}
