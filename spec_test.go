package shift

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"shift/internal/sim"
	"shift/internal/trace"
	"shift/internal/workload"
)

// catalogSpecFiles maps each Table I workload to the testdata spec
// document that reproduces it (same base parameters, same seed).
var catalogSpecFiles = map[string]string{
	"OLTP DB2":        "oltp_db2.yaml",
	"OLTP Oracle":     "oltp_oracle.yaml",
	"DSS Qry 2":       "dss_qry2.yaml",
	"DSS Qry 17":      "dss_qry17.json",
	"Media Streaming": "media_streaming.yaml",
	"Web Frontend":    "web_frontend.yaml",
	"Web Search":      "web_search.yaml",
}

// equivConfig is the small shared run shape of the equivalence tests.
func equivConfig(workloadName string, d Design) Config {
	cfg := DefaultRunConfig(workloadName, d)
	cfg.Cores = 4
	cfg.WarmupRecords = 6000
	cfg.MeasureRecords = 6000
	return cfg
}

// TestSpecCatalogEquivalence is the golden catalog-equivalence suite:
// for every Table I workload, the testdata spec document compiles to a
// workload whose runs are byte-identical to the catalog runs, while the
// spec's Config.Key stays distinct from the catalog cell's (spec cells
// must never alias catalog cache entries).
func TestSpecCatalogEquivalence(t *testing.T) {
	for _, name := range Workloads() {
		file, ok := catalogSpecFiles[name]
		if !ok {
			t.Fatalf("no equivalence spec file for catalog workload %q", name)
		}
		id, err := LoadSpecFile(filepath.Join("testdata", "specs", file))
		if err != nil {
			t.Fatalf("LoadSpecFile(%s): %v", file, err)
		}
		if !strings.HasPrefix(id, "spec:") {
			t.Fatalf("LoadSpecFile(%s) = %q, want a spec: ID", file, id)
		}
		if WorkloadDisplayName(id) != name {
			t.Errorf("display name of %s = %q, want %q", id, WorkloadDisplayName(id), name)
		}

		cat := equivConfig(name, DesignBaseline)
		spc := cat
		spc.Workload = id
		if cat.Key() == spc.Key() {
			t.Errorf("%s: spec config key equals catalog key %s", name, cat.Key())
		}

		rCat, err := Run(cat)
		if err != nil {
			t.Fatalf("catalog run %s: %v", name, err)
		}
		rSpec, err := Run(spc)
		if err != nil {
			t.Fatalf("spec run %s: %v", name, err)
		}
		if !reflect.DeepEqual(rCat, rSpec) {
			t.Errorf("%s: spec run differs from catalog run:\ncatalog: %+v\nspec:    %+v", name, rCat, rSpec)
		}
	}
}

// TestSpecFigure7RowMatchesCatalog proves a figure driver run over a
// spec workload yields the identical figure row as the catalog path.
func TestSpecFigure7RowMatchesCatalog(t *testing.T) {
	id, err := LoadSpecFile(filepath.Join("testdata", "specs", "web_search.yaml"))
	if err != nil {
		t.Fatal(err)
	}

	oCat := tinyOptions()
	figCat, err := RunFigure7(oCat)
	if err != nil {
		t.Fatal(err)
	}
	oSpec := tinyOptions()
	oSpec.Workloads = []string{id}
	figSpec, err := RunFigure7(oSpec)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := figSpec.Workloads, []string{"Web Search"}; !reflect.DeepEqual(got, want) {
		t.Errorf("spec figure workload axis = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(figCat.Rows, figSpec.Rows) {
		t.Errorf("Figure 7 rows differ:\ncatalog: %+v\nspec:    %+v", figCat.Rows, figSpec.Rows)
	}
}

// TestSpecPhasedDeterminism runs an out-of-catalog spec — a
// phase-sequenced footprint mix — twice through the public API and
// demands bit-identical results per seed, plus a changed ID (and
// changed result) under a different seed.
func TestSpecPhasedDeterminism(t *testing.T) {
	doc := `
name: burst-then-scan
seed: 7
phases:
  - records: 3000
    workload:
      base: Web Search
      footprint_bytes: 262144
  - records: 3000
    workload:
      base: DSS Qry 2
      scale: 0.25
`
	id, err := LoadSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cfg := equivConfig(id, DesignSHIFT)
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("phased spec not deterministic:\nfirst:  %+v\nsecond: %+v", r1, r2)
	}
	if r1.Workload != "burst-then-scan" {
		t.Errorf("result workload = %q, want display name", r1.Workload)
	}

	id2, err := LoadSpec([]byte(strings.Replace(doc, "seed: 7", "seed: 8", 1)))
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Error("different seed compiled to the same spec ID")
	}
	cfg2 := cfg
	cfg2.Workload = id2
	r3, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1, r3) {
		t.Error("different seed produced identical results")
	}
}

// recordTraces generates per-core recordings from a catalog workload —
// n records each — for the replay tests.
func recordTraces(t *testing.T, cores int, n int) [][]trace.Record {
	t.Helper()
	p, err := workload.ByName("Web Search")
	if err != nil {
		t.Fatal(err)
	}
	p = workload.Scaled(p, 0.25)
	w, err := workload.Cached(p)
	if err != nil {
		t.Fatal(err)
	}
	traces := make([][]trace.Record, cores)
	for c := range traces {
		recs, err := trace.Collect(trace.Limit(w.NewCoreReader(c), int64(n)), n)
		if err != nil {
			t.Fatal(err)
		}
		traces[c] = recs
	}
	return traces
}

// writeTraceFiles encodes recordings with the trace codec into dir and
// returns the file names.
func writeTraceFiles(t *testing.T, dir string, traces [][]trace.Record) []string {
	t.Helper()
	names := make([]string, len(traces))
	for i, recs := range traces {
		name := fmt.Sprintf("core%d.trace", i)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		enc, err := trace.NewEncoder(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := enc.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		names[i] = name
	}
	return names
}

// replaySpecFile writes a trace-replay spec document next to the
// recordings (relative paths resolve against the document directory).
func replaySpecFile(t *testing.T, dir string, paths []string) string {
	t.Helper()
	doc := "name: replayed\ntrace:\n  paths: [" + strings.Join(paths, ", ") + "]\n"
	file := filepath.Join(dir, "replay.yaml")
	if err := os.WriteFile(file, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return file
}

// TestSpecTraceReplayConformance is the round-trip conformance test:
// recordings written through the trace codec and replayed through a
// spec simulate bit-identically to the same records fed directly
// through an in-memory replay source.
func TestSpecTraceReplayConformance(t *testing.T) {
	const cores, n = 2, 9000
	traces := recordTraces(t, cores, n)
	dir := t.TempDir()
	id, err := LoadSpecFile(replaySpecFile(t, dir, writeTraceFiles(t, dir, traces)))
	if err != nil {
		t.Fatal(err)
	}

	cfg := equivConfig(id, DesignSHIFT)
	cfg.Cores = cores
	cfg.WarmupRecords = 4000
	cfg.MeasureRecords = 4000

	// Spec path: the registered replay source, through the public API.
	rSpec, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Direct path: the identical records as an in-memory source, run at
	// the sim layer with an otherwise identical configuration.
	rs, err := cfg.spec()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := workload.NewReplay(traces)
	if err != nil {
		t.Fatal(err)
	}
	rs.Source = direct
	simDirect, err := sim.Run(rs)
	if err != nil {
		t.Fatal(err)
	}
	rDirect := fromSim(simDirect, cfg.Workload)
	if !reflect.DeepEqual(rSpec, rDirect) {
		t.Errorf("replay through spec differs from direct replay:\nspec:   %+v\ndirect: %+v", rSpec, rDirect)
	}
}

// TestSpecTraceReplayShortStream proves a recording shorter than the
// simulation window surfaces as a typed *StreamShortError — detected up
// front, in both the standalone and batched execution paths.
func TestSpecTraceReplayShortStream(t *testing.T) {
	const cores, n = 2, 3000
	traces := recordTraces(t, cores, n)
	dir := t.TempDir()
	id, err := LoadSpecFile(replaySpecFile(t, dir, writeTraceFiles(t, dir, traces)))
	if err != nil {
		t.Fatal(err)
	}

	cfg := equivConfig(id, DesignBaseline)
	cfg.Cores = cores
	cfg.WarmupRecords = 4000
	cfg.MeasureRecords = 4000 // window 8000 > 3000 recorded

	check := func(err error, path string) {
		t.Helper()
		var short *StreamShortError
		if !errors.As(err, &short) {
			t.Fatalf("%s: error %v, want *StreamShortError", path, err)
		}
		if short.Phase != "validate" {
			t.Errorf("%s: shortage detected in phase %q, want validate", path, short.Phase)
		}
		if short.Have != int64(n) || short.Need != cfg.WarmupRecords+cfg.MeasureRecords {
			t.Errorf("%s: have/need = %d/%d, want %d/%d", path, short.Have, short.Need, n, cfg.WarmupRecords+cfg.MeasureRecords)
		}
	}

	_, err = Run(cfg)
	check(err, "standalone")

	// Batched: two cells over the same replay stream batch together and
	// must fail the same way, not truncate silently.
	cfg2 := cfg
	cfg2.Design = DesignNextLine
	_, err = RunBatch([]Config{cfg, cfg2})
	check(err, "batched")
}

// TestLoadSpecRestricted proves the wire-facing loader refuses
// trace-replay specs (shiftd must not read server-local files on behalf
// of remote clients) while accepting generated-workload specs.
func TestLoadSpecRestricted(t *testing.T) {
	if _, err := LoadSpecRestricted([]byte("name: sneaky\ntrace:\n  path: /etc/hostname\n")); err == nil {
		t.Error("restricted loader accepted a trace-replay spec")
	}
	id, err := LoadSpecRestricted([]byte("name: plain\nworkload:\n  base: Web Search\n"))
	if err != nil {
		t.Fatalf("restricted loader rejected a generated spec: %v", err)
	}
	if !KnownWorkload(id) {
		t.Errorf("compiled spec %s not known", id)
	}
}

// TestSpecMixPinsCores proves a mix spec pins the configured core count
// at every entry point that accepts a workload identifier.
func TestSpecMixPinsCores(t *testing.T) {
	id, err := LoadSpec([]byte(`
name: consolidated
mix:
  - name: oltp
    cores: 2
    workload: {base: "OLTP DB2"}
  - name: search
    cores: 2
    workload: {base: "Web Search", scale: 0.5}
`))
	if err != nil {
		t.Fatal(err)
	}
	if got := WorkloadCores(id); got != 4 {
		t.Fatalf("WorkloadCores = %d, want 4", got)
	}

	cfg := equivConfig(id, DesignBaseline) // 4 cores: matches
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores != 4 {
		t.Errorf("mix ran on %d cores, want 4", r.Cores)
	}

	bad := cfg
	bad.Cores = 8
	if _, err := Run(bad); err == nil || !strings.Contains(err.Error(), "4-core mix") {
		t.Errorf("mismatched core count accepted: %v", err)
	}
	if _, err := (Options{Workloads: []string{id}, Cores: 8}).normalize(); err == nil {
		t.Error("Options.normalize accepted a mismatched mix core count")
	}
}
