package shift

import (
	"fmt"
	"strings"

	"shift/internal/stats"
)

// Figure1 reproduces the paper's Figure 1: speedup as a function of the
// fraction of instruction cache misses eliminated, per workload, with the
// geometric mean. Each miss is probabilistically converted into a hit
// without exposing its latency (the paper's methodology); 100% equals a
// perfect instruction cache. The paper reports a linear trend reaching
// 31% mean speedup at 100%.
type Figure1 struct {
	// Fractions are the x-axis points in percent (0..100).
	Fractions []int
	// Speedup[workload][i] is the speedup at Fractions[i].
	Speedup map[string][]float64
	// GeoMean[i] is the geometric mean across workloads at Fractions[i].
	GeoMean []float64
	// Workloads preserves row order.
	Workloads []string
}

// RunFigure1 regenerates Figure 1.
func RunFigure1(o Options) (*Figure1, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	fig := &Figure1{
		Fractions: []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		Speedup:   make(map[string][]float64),
		Workloads: displayNames(o.Workloads),
	}
	// Grid: per workload, the baseline followed by one cell per nonzero
	// elimination fraction.
	var cells []Cell
	for _, w := range o.Workloads {
		cells = append(cells, cell(o.config(w, DesignBaseline)))
		for _, f := range fig.Fractions {
			if f == 0 {
				continue
			}
			cfg := o.config(w, DesignBaseline)
			cfg.ElimProb = float64(f) / 100
			cells = append(cells, cell(cfg, fmt.Sprintf("elim=%d%%", f)))
		}
	}
	results, err := o.engine().RunAll(cells)
	if err != nil {
		return nil, err
	}
	stride := len(fig.Fractions) // 1 baseline + (len-1) nonzero points
	for wi, w := range o.Workloads {
		base := results[wi*stride]
		row := make([]float64, len(fig.Fractions))
		next := wi*stride + 1
		for i, f := range fig.Fractions {
			if f == 0 {
				row[i] = 1.0
				continue
			}
			row[i] = results[next].Throughput / base.Throughput
			next++
		}
		fig.Speedup[WorkloadDisplayName(w)] = row
	}
	fig.GeoMean = make([]float64, len(fig.Fractions))
	for i := range fig.Fractions {
		col := make([]float64, 0, len(o.Workloads))
		for _, w := range o.Workloads {
			col = append(col, fig.Speedup[WorkloadDisplayName(w)][i])
		}
		fig.GeoMean[i] = stats.GeoMean(col)
	}
	return fig, nil
}

// PerfectGeoMean returns the geometric-mean speedup at 100% elimination
// (the paper's 1.31 headline).
func (f *Figure1) PerfectGeoMean() float64 {
	if len(f.GeoMean) == 0 {
		return 0
	}
	return f.GeoMean[len(f.GeoMean)-1]
}

// String renders the figure as a table of speedup series.
func (f *Figure1) String() string {
	header := []string{"Workload \\ %misses eliminated"}
	for _, p := range f.Fractions {
		header = append(header, fmt.Sprintf("%d%%", p))
	}
	t := stats.NewTable(header...)
	for _, w := range f.Workloads {
		row := []string{w}
		for _, v := range f.Speedup[w] {
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.AddRow(row...)
	}
	row := []string{"Geo. Mean"}
	for _, v := range f.GeoMean {
		row = append(row, fmt.Sprintf("%.3f", v))
	}
	t.AddRow(row...)
	var b strings.Builder
	b.WriteString("Figure 1: Speedup vs fraction of I-cache misses eliminated\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "Perfect-I geo-mean speedup: %.3f (paper: ~1.31)\n", f.PerfectGeoMean())
	return b.String()
}
