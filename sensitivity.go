package shift

import (
	"fmt"
	"strings"

	"shift/internal/core"
	"shift/internal/exp"
	"shift/internal/history"
	"shift/internal/sim"
	"shift/internal/stats"
)

// SensitivityPoint is one configuration of a design-parameter sweep.
type SensitivityPoint struct {
	// Parameter names the swept knob; Value is its setting.
	Parameter string
	// Value is the swept parameter's setting at this point.
	Value int
	// Speedup is over the no-prefetch baseline.
	Speedup float64
	// Coverage is the fraction of baseline misses eliminated.
	Coverage float64
}

// Sensitivity reproduces the Section 4.1 design-space study the paper
// summarizes ("a spatial region size of eight, a lookahead of five and a
// stream address buffer capacity of twelve achieve the maximum
// performance"; results were omitted from the paper for space). It also
// sweeps the stream count, which Section 4.1 fixes at four.
type Sensitivity struct {
	// Points holds every swept configuration, parameter-major.
	Points []SensitivityPoint
	// Workload is the measured workload (the first of o.Workloads).
	Workload string
}

// RunSensitivity sweeps SHIFT's SAB parameters on one workload (the first
// of o.Workloads).
func RunSensitivity(o Options) (*Sensitivity, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	wname := o.Workloads[0]
	base, err := o.runBaseline(wname)
	if err != nil {
		return nil, err
	}

	runPoint := func(param string, value int, mut func(*history.SABConfig)) (SensitivityPoint, error) {
		shc := core.DefaultConfig()
		mut(&shc.SAB)
		sc := sim.DefaultConfig()
		sc.Cores = o.Cores
		sc.CoreType = o.CoreType.internal()
		sc.Seed = o.Seed
		sc.Prefetcher = sim.PrefetcherSpec{Kind: sim.KindSHIFT, SHIFT: shc}
		rs := sim.RunSpec{
			Config:        sc,
			WarmupRecords: o.WarmupRecords, MeasureRecords: o.MeasureRecords,
		}
		if err := resolveWorkloadInto(wname, &rs); err != nil {
			return SensitivityPoint{}, err
		}
		res, err := sim.Run(rs)
		if err != nil {
			return SensitivityPoint{}, err
		}
		return SensitivityPoint{
			Parameter: param,
			Value:     value,
			Speedup:   res.Throughput / base.Throughput,
			Coverage:  1 - float64(res.Fetch.Misses)/float64(base.Misses),
		}, nil
	}

	// SAB mutations are not expressible as a public Config, so the sweep
	// runs its point list on the engine's generic worker pool.
	type sweepPoint struct {
		param string
		value int
		mut   func(*history.SABConfig)
	}
	var points []sweepPoint
	for _, span := range []int{4, 8, 16} {
		points = append(points, sweepPoint{"region span", span, func(c *history.SABConfig) { c.Span = span }})
	}
	for _, la := range []int{1, 3, 5, 8} {
		points = append(points, sweepPoint{"lookahead", la, func(c *history.SABConfig) { c.Lookahead = la }})
	}
	for _, cap := range []int{6, 12, 24} {
		points = append(points, sweepPoint{"SAB capacity", cap, func(c *history.SABConfig) { c.Capacity = cap }})
	}
	for _, streams := range []int{1, 2, 4, 8} {
		points = append(points, sweepPoint{"streams", streams, func(c *history.SABConfig) { c.Streams = streams }})
	}
	results, err := exp.Map(o.expOptions(), len(points), func(i int) (SensitivityPoint, error) {
		return runPoint(points[i].param, points[i].value, points[i].mut)
	})
	if err != nil {
		return nil, err
	}
	return &Sensitivity{Workload: WorkloadDisplayName(wname), Points: results}, nil
}

// Best returns the best value found for a parameter.
func (s *Sensitivity) Best(param string) (value int, speedup float64) {
	for _, p := range s.Points {
		if p.Parameter == param && p.Speedup > speedup {
			value, speedup = p.Value, p.Speedup
		}
	}
	return
}

// String renders the sweep.
func (s *Sensitivity) String() string {
	t := stats.NewTable("Parameter", "Value", "Speedup", "Miss coverage (%)")
	for _, p := range s.Points {
		t.AddRow(p.Parameter, fmt.Sprintf("%d", p.Value),
			fmt.Sprintf("%.3f", p.Speedup), fmt.Sprintf("%.1f", p.Coverage*100))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Section 4.1 sensitivity (SHIFT on %s)\n", s.Workload)
	b.WriteString(t.String())
	for _, param := range []string{"region span", "lookahead", "SAB capacity", "streams"} {
		v, sp := s.Best(param)
		fmt.Fprintf(&b, "best %s: %d (%.3fx)\n", param, v, sp)
	}
	b.WriteString("(paper: span 8, lookahead 5, capacity 12, 4 streams are the tuned values)\n")
	return b.String()
}
