package shift

import (
	"fmt"

	"shift/internal/validate"
	"shift/internal/workload"
)

// Options parameterizes the per-figure experiment drivers.
type Options struct {
	// Workloads selects a subset of Workloads() (nil = all seven).
	Workloads []string
	// Cores is the CMP size (default 16).
	Cores int
	// CoreType is the core microarchitecture (default Lean-OoO, as in
	// the paper's main results).
	CoreType CoreType
	// WarmupRecords/MeasureRecords are per-core window lengths
	// (defaults 60000/60000; benchmarks use smaller values).
	WarmupRecords, MeasureRecords int64
	// Seed drives simulator randomness.
	Seed int64
	// Sampling optionally runs every cell of the experiment with
	// interval sampling and functional warming instead of exact
	// simulation (see Sampling): detailed intervals alternate with
	// cheap fast-forwarding, and each RunResult carries standard-error/
	// confidence-interval fields for its headline metrics. The zero
	// value — the default — is exact simulation, whose output is byte-
	// identical to previous releases; sampled output is an approximation
	// with quantified error and is keyed separately in every result
	// store.
	Sampling Sampling
	// Parallelism bounds the experiment engine's worker pool:
	// 0 = runtime.GOMAXPROCS(0), 1 = serial, N>1 = N workers. Results
	// are bit-identical regardless of the setting (cells are merged by
	// key, never by completion order).
	Parallelism int
	// Cache, when non-nil, memoizes per-cell results content-addressed
	// by Config hash, so repeated sweeps — and experiments sharing
	// cells, such as the per-workload baselines — skip already-computed
	// simulations. Memoization never changes results. Any ResultStore
	// backend works: NewResultCache() for in-process reuse,
	// NewTieredStore(dir) to persist cells across process restarts.
	Cache ResultStore
	// DisableBatching forces the engine to simulate grid cells one by
	// one instead of batching cells that share a trace stream (equal
	// Config.StreamKeys) into a single generation pass. Output is
	// identical either way — batching only changes how much per-record
	// work is shared — so this exists for diagnostics and for A/B
	// benchmarking the batched path (bench_test.go's unbatched case).
	// Ignored when Engine is set (the engine's own construction
	// governs).
	DisableBatching bool
	// Engine, when non-nil, submits every cell to this shared engine
	// instead of constructing one from Parallelism and Cache — sharing
	// its store and its in-flight deduplication across concurrent
	// drivers (how the shiftd service serves many clients from one
	// engine). Parallelism and Cache are ignored when Engine is set.
	Engine *Engine
}

// DefaultOptions returns the reference experiment scale (a full figure
// regenerates in roughly one to three minutes).
func DefaultOptions() Options {
	return Options{
		Cores:          16,
		CoreType:       LeanOoO,
		WarmupRecords:  60000,
		MeasureRecords: 60000,
		Seed:           1,
	}
}

// QuickOptions returns a reduced scale for smoke tests and benchmarks
// (~6x faster; shapes hold, absolute numbers are noisier).
func QuickOptions() Options {
	o := DefaultOptions()
	o.WarmupRecords = 25000
	o.MeasureRecords = 25000
	return o
}

// normalize validates and fills defaults.
func (o Options) normalize() (Options, error) {
	if o.Cores == 0 {
		o.Cores = 16
	}
	if o.WarmupRecords == 0 {
		o.WarmupRecords = 60000
	}
	if o.MeasureRecords == 0 {
		o.MeasureRecords = 60000
	}
	for _, w := range o.Workloads {
		if !KnownWorkload(w) {
			if _, err := workload.ByName(w); err != nil {
				return o, err
			}
		}
		if n := WorkloadCores(w); n != 0 && n != o.Cores {
			return o, fmt.Errorf("shift: workload %q is a %d-core mix, Options.Cores is %d", w, n, o.Cores)
		}
	}
	if len(o.Workloads) == 0 {
		o.Workloads = Workloads()
	}
	cell := validate.Cell{
		Cores:            o.Cores,
		WarmupRecords:    o.WarmupRecords,
		MeasureRecords:   o.MeasureRecords,
		SamplePeriod:     o.Sampling.Period,
		SampleInterval:   o.Sampling.IntervalRecords,
		SampleWarmup:     o.Sampling.WarmupFraction,
		SampleConfidence: o.Sampling.Confidence,
	}
	if err := cell.Check(); err != nil {
		return o, fmt.Errorf("shift: %w", err)
	}
	if err := validate.SampledWindow(o.Sampling.Period, o.Sampling.IntervalRecords, o.MeasureRecords); err != nil {
		return o, fmt.Errorf("shift: %w", err)
	}
	return o, nil
}

// config builds a run Config from the options.
func (o Options) config(workloadName string, d Design) Config {
	return Config{
		Workload:       workloadName,
		Design:         d,
		CoreType:       o.CoreType,
		Cores:          o.Cores,
		WarmupRecords:  o.WarmupRecords,
		MeasureRecords: o.MeasureRecords,
		Seed:           o.Seed,
		Sampling:       o.Sampling,
	}
}

// runBaseline runs the no-prefetch system for normalization (through
// the engine, so a shared Cache reuses baselines across experiments).
func (o Options) runBaseline(workloadName string) (RunResult, error) {
	return o.run(o.config(workloadName, DesignBaseline))
}
