package shift

import (
	"fmt"
	"strings"

	"shift/internal/core"
	"shift/internal/sim"
	"shift/internal/stats"
	"shift/internal/workload"
)

// GeneratorPoint is one choice of history generator core and the coverage
// and speedup SHIFT achieves with it.
type GeneratorPoint struct {
	GeneratorCore int
	Speedup       float64
	Covered       float64 // fraction of baseline misses eliminated
}

// GeneratorStudy reproduces the paper's Section 6.1 claim: "in a
// sixteen-core system, there is no sensitivity to the choice of the
// history generator core". The cores of a homogeneous server workload
// execute statistically identical streams, so any of them can record the
// shared history.
type GeneratorStudy struct {
	Workload string
	Points   []GeneratorPoint
	// Spread is (max-min)/mean speedup across generator choices.
	Spread float64
}

// RunGeneratorStudy measures SHIFT with several different generator cores
// on the first workload of o.Workloads.
func RunGeneratorStudy(o Options) (*GeneratorStudy, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	wname := o.Workloads[0]
	wp, err := workload.ByName(wname)
	if err != nil {
		return nil, err
	}
	base, err := o.runBaseline(wname)
	if err != nil {
		return nil, err
	}
	study := &GeneratorStudy{Workload: wname}
	gens := []int{0, o.Cores / 3, o.Cores / 2, o.Cores - 1}
	seen := map[int]bool{}
	var speedups []float64
	for _, g := range gens {
		if seen[g] {
			continue
		}
		seen[g] = true
		shc := core.DefaultConfig()
		shc.GeneratorCore = g
		sc := sim.DefaultConfig()
		sc.Cores = o.Cores
		sc.CoreType = o.CoreType.internal()
		sc.Seed = o.Seed
		sc.Prefetcher = sim.PrefetcherSpec{Kind: sim.KindSHIFT, SHIFT: shc}
		res, err := sim.Run(sim.RunSpec{
			Config: sc, Workload: wp,
			WarmupRecords: o.WarmupRecords, MeasureRecords: o.MeasureRecords,
		})
		if err != nil {
			return nil, err
		}
		sp := res.Throughput / base.Throughput
		study.Points = append(study.Points, GeneratorPoint{
			GeneratorCore: g,
			Speedup:       sp,
			Covered:       1 - float64(res.Fetch.Misses)/float64(base.Misses),
		})
		speedups = append(speedups, sp)
	}
	if m := stats.Mean(speedups); m > 0 {
		study.Spread = (stats.Max(speedups) - stats.Min(speedups)) / m
	}
	return study, nil
}

// String renders the study.
func (g *GeneratorStudy) String() string {
	t := stats.NewTable("Generator core", "Speedup", "Misses covered (%)")
	for _, p := range g.Points {
		t.AddRow(fmt.Sprintf("%d", p.GeneratorCore),
			fmt.Sprintf("%.3f", p.Speedup), fmt.Sprintf("%.1f", p.Covered*100))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Section 6.1: choice of history generator core (%s)\n", g.Workload)
	b.WriteString(t.String())
	fmt.Fprintf(&b, "Speedup spread across choices: %.1f%% (paper: \"no sensitivity\")\n", g.Spread*100)
	return b.String()
}
