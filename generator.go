package shift

import (
	"fmt"
	"strings"

	"shift/internal/core"
	"shift/internal/exp"
	"shift/internal/sim"
	"shift/internal/stats"
)

// GeneratorPoint is one choice of history generator core and the coverage
// and speedup SHIFT achieves with it.
type GeneratorPoint struct {
	// GeneratorCore is the core elected to record the shared history.
	GeneratorCore int
	// Speedup is over the no-prefetch baseline.
	Speedup float64
	// Covered is the fraction of baseline misses eliminated.
	Covered float64
}

// GeneratorStudy reproduces the paper's Section 6.1 claim: "in a
// sixteen-core system, there is no sensitivity to the choice of the
// history generator core". The cores of a homogeneous server workload
// execute statistically identical streams, so any of them can record the
// shared history.
type GeneratorStudy struct {
	// Workload is the measured workload (the first of o.Workloads).
	Workload string
	// Points holds one entry per evaluated generator-core choice.
	Points []GeneratorPoint
	// Spread is (max-min)/mean speedup across generator choices.
	Spread float64
}

// RunGeneratorStudy measures SHIFT with several different generator cores
// on the first workload of o.Workloads.
func RunGeneratorStudy(o Options) (*GeneratorStudy, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	wname := o.Workloads[0]
	base, err := o.runBaseline(wname)
	if err != nil {
		return nil, err
	}
	study := &GeneratorStudy{Workload: WorkloadDisplayName(wname)}
	seen := map[int]bool{}
	var gens []int
	for _, g := range []int{0, o.Cores / 3, o.Cores / 2, o.Cores - 1} {
		if !seen[g] {
			seen[g] = true
			gens = append(gens, g)
		}
	}
	// Generator choice is a sim-level knob, so the study runs its cells
	// on the engine's generic worker pool.
	points, err := exp.Map(o.expOptions(), len(gens), func(i int) (GeneratorPoint, error) {
		shc := core.DefaultConfig()
		shc.GeneratorCore = gens[i]
		sc := sim.DefaultConfig()
		sc.Cores = o.Cores
		sc.CoreType = o.CoreType.internal()
		sc.Seed = o.Seed
		sc.Prefetcher = sim.PrefetcherSpec{Kind: sim.KindSHIFT, SHIFT: shc}
		rs := sim.RunSpec{
			Config:        sc,
			WarmupRecords: o.WarmupRecords, MeasureRecords: o.MeasureRecords,
		}
		if err := resolveWorkloadInto(wname, &rs); err != nil {
			return GeneratorPoint{}, err
		}
		res, err := sim.Run(rs)
		if err != nil {
			return GeneratorPoint{}, err
		}
		return GeneratorPoint{
			GeneratorCore: gens[i],
			Speedup:       res.Throughput / base.Throughput,
			Covered:       1 - float64(res.Fetch.Misses)/float64(base.Misses),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	study.Points = points
	speedups := make([]float64, len(points))
	for i, p := range points {
		speedups[i] = p.Speedup
	}
	if m := stats.Mean(speedups); m > 0 {
		study.Spread = (stats.Max(speedups) - stats.Min(speedups)) / m
	}
	return study, nil
}

// String renders the study.
func (g *GeneratorStudy) String() string {
	t := stats.NewTable("Generator core", "Speedup", "Misses covered (%)")
	for _, p := range g.Points {
		t.AddRow(fmt.Sprintf("%d", p.GeneratorCore),
			fmt.Sprintf("%.3f", p.Speedup), fmt.Sprintf("%.1f", p.Covered*100))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Section 6.1: choice of history generator core (%s)\n", g.Workload)
	b.WriteString(t.String())
	fmt.Fprintf(&b, "Speedup spread across choices: %.1f%% (paper: \"no sensitivity\")\n", g.Spread*100)
	return b.String()
}
