package shift

import (
	"reflect"
	"sync"
	"testing"
)

// storeTestResult runs one small cell to get a realistic RunResult
// (non-zero floats and counters) for round-trip tests.
func storeTestResult(t *testing.T) (Config, RunResult) {
	t.Helper()
	o := engineTestOptions()
	cfg := o.config("Web Search", DesignSHIFT)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, r
}

// TestDiskStoreRoundTrip checks that a result survives the JSON
// encode/decode and a process restart (modeled by a second store handle
// on the same directory) bit-identically.
func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg, want := storeTestResult(t)
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup(cfg.Key()); ok {
		t.Fatal("hit in empty store")
	}
	s.Store(cfg.Key(), want)
	got, ok := s.Lookup(cfg.Key())
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot:  %+v\nwant: %+v", got, want)
	}
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got2, ok := s2.Lookup(cfg.Key())
	if !ok || !reflect.DeepEqual(got2, want) {
		t.Fatalf("restart round trip mismatch: ok=%v", ok)
	}
	if s2.Len() != 1 {
		t.Errorf("Len = %d, want 1", s2.Len())
	}
	if s.Errors() != 0 || s2.Errors() != 0 {
		t.Errorf("healthy store reported errors: %d, %d", s.Errors(), s2.Errors())
	}
}

// TestTieredStorePromotion checks the tier interplay: a cell written by
// another process (disk-only handle) is served from disk once, then
// from memory.
func TestTieredStorePromotion(t *testing.T) {
	dir := t.TempDir()
	cfg, want := storeTestResult(t)
	disk, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	disk.Store(cfg.Key(), want)

	tiered, err := NewTieredStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := tiered.Lookup(cfg.Key())
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatal("tiered store missed a cell present on disk")
	}
	hits, misses := tiered.Stats()
	if hits != 1 || misses != 0 {
		t.Errorf("after disk hit: hits=%d misses=%d, want 1/0", hits, misses)
	}
	// The disk hit was promoted: the second lookup is a memory hit and
	// the disk tier sees no further traffic.
	diskHitsBefore, _ := tiered.disk.Stats()
	if _, ok := tiered.Lookup(cfg.Key()); !ok {
		t.Fatal("promoted cell missed")
	}
	if diskHitsAfter, _ := tiered.disk.Stats(); diskHitsAfter != diskHitsBefore {
		t.Error("second lookup went to disk instead of the memory tier")
	}
	if _, ok := tiered.Lookup("0123456789abcdef0123456789abcdef"); ok {
		t.Error("hit on an absent key")
	}
	if _, misses := tiered.Stats(); misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
}

// TestNilStoresAreValid pins the documented nil-validity contract of
// every ResultStore backend and of an engine without a store.
func TestNilStoresAreValid(t *testing.T) {
	for name, s := range map[string]ResultStore{
		"ResultCache": (*ResultCache)(nil),
		"DiskStore":   (*DiskStore)(nil),
		"TieredStore": (*TieredStore)(nil),
	} {
		if _, ok := s.Lookup("deadbeef"); ok {
			t.Errorf("%s: nil store hit", name)
		}
		s.Store("deadbeef", RunResult{})
		if s.Len() != 0 {
			t.Errorf("%s: nil store Len != 0", name)
		}
		if h, m := s.Stats(); h != 0 || m != 0 {
			t.Errorf("%s: nil store stats %d/%d", name, h, m)
		}
	}
}

// TestEnginePersistsAcrossRestarts is the acceptance property of the
// disk store: a figure sweep run twice against the same cache
// directory, through two independent engines (two "processes"),
// simulates zero cells the second time and produces bit-identical
// output.
func TestEnginePersistsAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	o := engineTestOptions()
	o.Workloads = []string{"Web Search"}

	run := func() (*Figure9, EngineStats) {
		st, err := NewTieredStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		o.Engine = NewEngine(4, st)
		fig, err := RunFigure9(o)
		if err != nil {
			t.Fatal(err)
		}
		return fig, o.Engine.Stats()
	}
	first, coldStats := run()
	if coldStats.Simulated == 0 {
		t.Fatal("cold run simulated nothing")
	}
	second, warmStats := run()
	if warmStats.Simulated != 0 {
		t.Errorf("warm run simulated %d cells, want 0 (all served from disk)", warmStats.Simulated)
	}
	if warmStats.StoreHits == 0 {
		t.Error("warm run recorded no store hits")
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("disk-served rerun differs from the original:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestEngineSingleFlight checks in-flight deduplication: concurrent
// identical RunOne calls on a shared engine share one simulation.
func TestEngineSingleFlight(t *testing.T) {
	o := engineTestOptions()
	cfg := o.config("Web Search", DesignSHIFT)
	e := NewEngine(2, NewResultCache())
	const n = 8
	results := make([]RunResult, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			r, err := e.RunOne(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
	// Dedup is documented as best-effort: a caller descheduled between
	// its store miss and its in-flight claim can become a second owner,
	// so asserting exactly one simulation would flake on a loaded
	// runner. The hard guarantees: every caller is accounted for by
	// exactly one of {simulate, dedup-wait, store hit}, at least one
	// simulation happened, and real sharing occurred.
	st := e.Stats()
	if st.Simulated+st.Deduped+st.StoreHits != n {
		t.Errorf("accounting: simulated=%d + deduped=%d + storeHits=%d != %d callers",
			st.Simulated, st.Deduped, st.StoreHits, n)
	}
	if st.Simulated < 1 || st.Simulated >= n {
		t.Errorf("simulated %d cells for %d concurrent identical calls, want 1 <= simulated < %d", st.Simulated, n, n)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d after quiescence, want 0", st.Inflight)
	}
}

// TestEngineSkippedCellWaiterFallback checks that one caller's bad
// grid cannot poison another caller's good cell: when a failing RunAll
// abandons claims it never simulated, a concurrent waiter on such a
// cell computes it itself instead of inheriting the stranger's error.
func TestEngineSkippedCellWaiterFallback(t *testing.T) {
	o := engineTestOptions()
	good := o.config("Web Search", DesignNextLine)
	bad := good
	bad.Workload = "No Such Workload"
	// Parallelism 1 makes the grid's failure order deterministic: the
	// bad cell (index 0) fails first and the good cell (index 1) is
	// skipped — resolving its claim with errCellSkipped whenever the
	// grid owned it.
	e := NewEngine(1, NewResultCache())
	var wg sync.WaitGroup
	const callers = 4
	runErrs := make([]error, callers)
	var gridErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, gridErr = e.RunAll([]Cell{cell(bad), cell(good)})
	}()
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, runErrs[i] = e.RunOne(good)
		}(i)
	}
	wg.Wait()
	if gridErr == nil {
		t.Error("grid with a bad cell succeeded")
	}
	for i, err := range runErrs {
		if err != nil {
			t.Errorf("caller %d inherited the failing grid's error: %v", i, err)
		}
	}
	if e.Stats().Inflight != 0 {
		t.Error("in-flight entries leaked")
	}
}

// TestEngineSingleFlightError checks that waiters observe the owner's
// failure rather than hanging, and that a failed cell is not stored.
func TestEngineSingleFlightError(t *testing.T) {
	o := engineTestOptions()
	bad := o.config("Web Search", DesignSHIFT)
	bad.Workload = "No Such Workload"
	st := NewResultCache()
	e := NewEngine(2, st)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.RunOne(bad)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("caller %d: bad workload accepted", i)
		}
	}
	if st.Len() != 0 {
		t.Errorf("failed cell was stored (%d entries)", st.Len())
	}
	if e.Stats().Inflight != 0 {
		t.Error("in-flight entries leaked after failures")
	}
}
