package shift

import (
	"fmt"
	"strings"

	"shift/internal/stats"
)

// TrafficRow is one workload's SHIFT-induced extra LLC traffic, as
// percentages of the baseline system's demand (instruction + data) LLC
// traffic.
type TrafficRow struct {
	// Workload names the row.
	Workload string
	// LogRead/LogWrite are history-buffer reads and writes; Discard is
	// traffic for prefetched blocks discarded before use. IndexUpdate is
	// reported separately because it touches only the LLC tag array
	// (the paper reports it in the text: ~2.5%).
	LogRead, LogWrite, Discard, IndexUpdate float64
}

// Total returns the data-array traffic increase (the paper's stacked
// bars: LogRead + LogWrite + Discard).
func (r TrafficRow) Total() float64 { return r.LogRead + r.LogWrite + r.Discard }

// Figure9 reproduces the paper's Figure 9: virtualized SHIFT's extra LLC
// traffic normalized to baseline demand traffic. The paper reports ~6%
// from history reads+writes and ~7% from discards on average, with web
// frontend the worst case (~26% total), and index updates at 2.5%
// (tag array only).
type Figure9 struct {
	// Rows holds one entry per workload, in Workloads order.
	Rows []TrafficRow
	// Workloads is the row axis, in rendering order.
	Workloads []string
}

// RunFigure9 regenerates Figure 9.
func RunFigure9(o Options) (*Figure9, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, w := range o.Workloads {
		cells = append(cells, cell(o.config(w, DesignBaseline)), cell(o.config(w, DesignSHIFT)))
	}
	results, err := o.engine().RunAll(cells)
	if err != nil {
		return nil, err
	}
	fig := &Figure9{Workloads: displayNames(o.Workloads)}
	for wi, w := range o.Workloads {
		base, res := results[2*wi], results[2*wi+1]
		denom := float64(base.Traffic.Demand())
		fig.Rows = append(fig.Rows, TrafficRow{
			Workload:    WorkloadDisplayName(w),
			LogRead:     float64(res.Traffic.HistRead) / denom * 100,
			LogWrite:    float64(res.Traffic.HistWrite) / denom * 100,
			Discard:     float64(res.Traffic.Discard) / denom * 100,
			IndexUpdate: float64(res.Traffic.IndexUpdate) / denom * 100,
		})
	}
	return fig, nil
}

// MeanLogTraffic returns the mean history read+write increase.
func (f *Figure9) MeanLogTraffic() float64 {
	var vals []float64
	for _, r := range f.Rows {
		vals = append(vals, r.LogRead+r.LogWrite)
	}
	return stats.Mean(vals)
}

// MeanDiscard returns the mean discard traffic increase.
func (f *Figure9) MeanDiscard() float64 {
	var vals []float64
	for _, r := range f.Rows {
		vals = append(vals, r.Discard)
	}
	return stats.Mean(vals)
}

// WorstTotal returns the workload with the largest total increase.
func (f *Figure9) WorstTotal() (string, float64) {
	name, worst := "", 0.0
	for _, r := range f.Rows {
		if t := r.Total(); t > worst {
			name, worst = r.Workload, t
		}
	}
	return name, worst
}

// String renders the traffic table.
func (f *Figure9) String() string {
	t := stats.NewTable("Workload", "LogRead (%)", "LogWrite (%)", "Discard (%)", "Total (%)", "IndexUpd (tag-only, %)")
	for _, r := range f.Rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.1f", r.LogRead),
			fmt.Sprintf("%.1f", r.LogWrite),
			fmt.Sprintf("%.1f", r.Discard),
			fmt.Sprintf("%.1f", r.Total()),
			fmt.Sprintf("%.1f", r.IndexUpdate))
	}
	var b strings.Builder
	b.WriteString("Figure 9: SHIFT LLC traffic overhead (% of baseline demand traffic)\n")
	b.WriteString(t.String())
	worstName, worstVal := f.WorstTotal()
	fmt.Fprintf(&b, "Mean: log %.1f%% + discard %.1f%%; worst %s %.1f%% (paper: ~6%%+7%%, worst web frontend ~26%%)\n",
		f.MeanLogTraffic(), f.MeanDiscard(), worstName, worstVal)
	return b.String()
}
